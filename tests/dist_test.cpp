// Distributed FW tests: every variant on several grids and placements
// against the sequential oracle; block-cyclic layout; traffic properties
// (reordering reduces NIC bytes, ring vs tree volume).
#include <gtest/gtest.h>

#include <tuple>

#include "core/floyd_warshall.hpp"
#include "dist/block_cyclic.hpp"
#include "dist/driver.hpp"
#include "dist/grid.hpp"
#include "dist/parallel_fw.hpp"
#include "dist/dc_apsp.hpp"

namespace parfw::dist {
namespace {

using S = MinPlus<float>;

// --- GridSpec ---------------------------------------------------------------

TEST(GridSpec, RowMajorMapping) {
  const auto g = GridSpec::row_major(2, 3);
  EXPECT_EQ(g.size(), 6);
  EXPECT_EQ(g.world_rank({0, 0}), 0);
  EXPECT_EQ(g.world_rank({1, 2}), 5);
  EXPECT_EQ(g.coord_of(4), (GridCoord{1, 1}));
}

TEST(GridSpec, TiledMappingMatchesFigure1Structure) {
  // K=2x2 nodes, Q=2x2 ranks per node: ranks 0-3 on node 0 must occupy the
  // top-left 2x2 tile of the 4x4 grid.
  const auto g = GridSpec::tiled(2, 2, 2, 2);
  EXPECT_EQ(g.rows(), 4);
  EXPECT_EQ(g.cols(), 4);
  EXPECT_EQ(g.world_rank({0, 0}), 0);
  EXPECT_EQ(g.world_rank({0, 1}), 1);
  EXPECT_EQ(g.world_rank({1, 0}), 2);
  EXPECT_EQ(g.world_rank({1, 1}), 3);
  EXPECT_EQ(g.world_rank({0, 2}), 4);  // node 1 starts at rank 4
  EXPECT_EQ(g.world_rank({2, 0}), 8);  // node 2 (second node row)
}

TEST(GridSpec, TiledIsPermutation) {
  const auto g = GridSpec::tiled(2, 3, 3, 2);
  std::vector<bool> seen(static_cast<std::size_t>(g.size()), false);
  for (int r = 0; r < g.rows(); ++r)
    for (int c = 0; c < g.cols(); ++c) {
      const int w = g.world_rank({r, c});
      EXPECT_FALSE(seen[static_cast<std::size_t>(w)]);
      seen[static_cast<std::size_t>(w)] = true;
      EXPECT_EQ(g.coord_of(w), (GridCoord{r, c}));
    }
}

// --- BlockCyclicMatrix --------------------------------------------------------

TEST(BlockCyclic, OwnershipAndIndexMaps) {
  const auto grid = GridSpec::row_major(2, 3);
  BlockCyclicMatrix<float> m(48, 8, grid, {1, 2});  // nb = 6
  EXPECT_EQ(m.local_block_rows(), 3u);  // rows 1,3,5
  EXPECT_EQ(m.local_block_cols(), 2u);  // cols 2,5
  EXPECT_TRUE(m.owns_block(3, 5));
  EXPECT_FALSE(m.owns_block(2, 5));
  EXPECT_EQ(m.local_row(5), 2u);
  EXPECT_EQ(m.global_col(1), 5u);
}

TEST(BlockCyclic, DimensionMustBeMultipleOfBlock) {
  const auto grid = GridSpec::row_major(1, 1);
  EXPECT_THROW(BlockCyclicMatrix<float>(50, 8, grid, {0, 0}), check_error);
}

TEST(BlockCyclic, LoadFillGatherRoundTrip) {
  const auto grid = GridSpec::row_major(2, 2);
  const std::size_t n = 32, b = 4;
  DenseEntryGen<float> gen(42, 0.8);
  const auto full = gen.full(n);
  Matrix<float> gathered;
  mpi::Runtime::run(4, [&](mpi::Comm& world) {
    BlockCyclicMatrix<float> local(n, b, grid, grid.coord_of(world.rank()));
    local.fill(gen);
    auto out = local.gather(world);
    if (world.rank() == 0) gathered = std::move(out);
  });
  ASSERT_EQ(gathered.rows(), n);
  EXPECT_EQ(max_abs_diff<float>(full.view(), gathered.view()), 0.0);
}

// --- parallel_fw correctness ---------------------------------------------------

Matrix<float> oracle(std::size_t n, const DenseEntryGen<float>& gen) {
  auto m = gen.full(static_cast<vertex_t>(n));
  floyd_warshall<S>(m.view());
  return m;
}

struct DistCase {
  int pr, pc;
  std::size_t n, b;
  Variant variant;
};

class ParallelFwParam : public ::testing::TestWithParam<DistCase> {};

TEST_P(ParallelFwParam, MatchesSequentialOracle) {
  const DistCase c = GetParam();
  DenseEntryGen<float> gen(1000 + c.n + static_cast<std::uint64_t>(c.pr),
                           0.85, 1.0f, 90.0f, /*integral=*/true);
  const auto expected = oracle(c.n, gen);

  const auto grid = GridSpec::row_major(c.pr, c.pc);
  DistFwOptions opt;
  opt.variant = c.variant;
  opt.block_size = c.b;
  if (c.variant == Variant::kOffload) {
    opt.oog.mx = opt.oog.nx = 16;
    opt.oog.num_streams = 2;
  }
  const auto result = run_parallel_fw<S>(c.n, gen, grid, /*ranks_per_node=*/2, opt);
  ASSERT_EQ(result.dist.rows(), c.n);
  EXPECT_EQ(max_abs_diff<float>(expected.view(), result.dist.view()), 0.0)
      << "variant=" << variant_name(c.variant) << " grid=" << c.pr << "x"
      << c.pc << " n=" << c.n << " b=" << c.b;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, ParallelFwParam,
    ::testing::Values(
        // single rank sanity
        DistCase{1, 1, 32, 8, Variant::kBaseline},
        DistCase{1, 1, 32, 8, Variant::kAsync},
        // square grids
        DistCase{2, 2, 48, 8, Variant::kBaseline},
        DistCase{2, 2, 48, 8, Variant::kPipelined},
        DistCase{2, 2, 48, 8, Variant::kAsync},
        DistCase{2, 2, 48, 8, Variant::kOffload},
        DistCase{3, 3, 72, 8, Variant::kBaseline},
        DistCase{3, 3, 72, 8, Variant::kPipelined},
        DistCase{3, 3, 72, 8, Variant::kAsync},
        // rectangular grids, both orientations
        DistCase{2, 3, 48, 8, Variant::kBaseline},
        DistCase{2, 3, 48, 8, Variant::kAsync},
        DistCase{3, 2, 48, 8, Variant::kPipelined},
        DistCase{4, 2, 64, 8, Variant::kAsync},
        DistCase{1, 4, 32, 8, Variant::kAsync},
        DistCase{4, 1, 32, 8, Variant::kPipelined},
        // block size that leaves multiple blocks per rank in each dim
        DistCase{2, 2, 96, 12, Variant::kAsync},
        DistCase{2, 2, 64, 32, Variant::kBaseline},
        DistCase{2, 2, 64, 32, Variant::kOffload}),
    [](const ::testing::TestParamInfo<DistCase>& info) {
      const DistCase& c = info.param;
      return std::string(variant_name(c.variant)) + "_" +
             std::to_string(c.pr) + "x" + std::to_string(c.pc) + "_n" +
             std::to_string(c.n) + "_b" + std::to_string(c.b);
    });

TEST(ParallelFw, TiledPlacementAlsoCorrect) {
  const std::size_t n = 64, b = 8;
  DenseEntryGen<float> gen(77, 0.9, 1.0f, 100.0f, /*integral=*/true);
  const auto expected = oracle(n, gen);
  const auto grid = GridSpec::tiled(2, 2, 2, 2);  // 4x4 grid, 16 ranks
  DistFwOptions opt;
  opt.variant = Variant::kAsync;
  opt.block_size = b;
  const auto result =
      run_parallel_fw<S>(n, gen, grid, /*ranks_per_node=*/4, opt);
  EXPECT_EQ(max_abs_diff<float>(expected.view(), result.dist.view()), 0.0);
}

TEST(ParallelFw, LogSquaringDiagMatches) {
  const std::size_t n = 48, b = 8;
  DenseEntryGen<float> gen(78, 1.0, 1.0f, 100.0f, /*integral=*/true);
  const auto expected = oracle(n, gen);
  const auto grid = GridSpec::row_major(2, 2);
  DistFwOptions opt;
  opt.variant = Variant::kPipelined;
  opt.block_size = b;
  opt.diag = DiagStrategy::kLogSquaring;
  const auto result = run_parallel_fw<S>(n, gen, grid, 2, opt);
  EXPECT_EQ(max_abs_diff<float>(expected.view(), result.dist.view()), 0.0);
}

TEST(ParallelFw, SparseInputWithUnreachablePairs) {
  const std::size_t n = 48, b = 8;
  DenseEntryGen<float> gen(79, 0.05, 1.0f, 100.0f, /*integral=*/true);  // very sparse
  const auto expected = oracle(n, gen);
  const auto grid = GridSpec::row_major(2, 2);
  DistFwOptions opt;
  opt.variant = Variant::kAsync;
  opt.block_size = b;
  const auto result = run_parallel_fw<S>(n, gen, grid, 2, opt);
  EXPECT_EQ(max_abs_diff<float>(expected.view(), result.dist.view()), 0.0);
}

// --- distributed path generation (payload-generic interpreter) -----------------

struct DistPathsCase {
  Variant variant;
  bool tiled;
};

class DistPathsParam : public ::testing::TestWithParam<DistPathsCase> {};

// The payload-generic interpreter must reproduce the single-node blocked
// paths oracle BIT-IDENTICALLY: both sides run the same argmin-tracking
// kernel at the same call granularity, so there is no tie-break slack to
// hide behind. Every schedulable variant, on both placements.
TEST_P(DistPathsParam, PredMatrixBitIdenticalToBlockedOracle) {
  const DistPathsCase c = GetParam();
  const std::size_t n = 48, b = 8;
  DenseEntryGen<float> gen(
      5100 + static_cast<std::uint64_t>(c.variant) * 10 + (c.tiled ? 3 : 0),
      0.7, 1.0f, 60.0f, /*integral=*/true);

  // Single-node blocked oracle with paths, same block size.
  auto exp_dist = gen.full(static_cast<vertex_t>(n));
  Matrix<std::int64_t> exp_pred(n, n);
  init_predecessors<S>(exp_dist.view(), exp_pred.view());
  blocked_floyd_warshall_paths<S>(exp_dist.view(), exp_pred.view(), b);

  // tiled: 2x1 node grid of 1x2 tiles — 2x2 process grid over two nodes,
  // so the node-aware ring/tree paths are exercised without a 16-rank run.
  const auto grid =
      c.tiled ? GridSpec::tiled(2, 1, 1, 2) : GridSpec::row_major(2, 2);
  Matrix<float> got_dist;
  Matrix<std::int64_t> got_pred;
  mpi::Runtime::run(grid.size(), [&](mpi::Comm& world) {
    BlockCyclicMatrix<float> local(n, b, grid, grid.coord_of(world.rank()));
    BlockCyclicMatrix<std::int64_t> plocal(n, b, grid,
                                           grid.coord_of(world.rank()));
    local.fill(gen);
    init_predecessors_dist<S>(local, plocal);
    DistFwOptions opt;
    opt.variant = c.variant;
    opt.block_size = b;
    if (c.variant == Variant::kOffload) {
      opt.oog.mx = opt.oog.nx = 16;
      opt.oog.num_streams = 2;
    }
    parallel_fw<S>(world, local, plocal, opt);
    auto d = local.gather(world);
    auto p = plocal.gather(world);
    if (world.rank() == 0) {
      got_dist = std::move(d);
      got_pred = std::move(p);
    }
  });

  ASSERT_EQ(got_dist.rows(), n);
  EXPECT_EQ(max_abs_diff<float>(exp_dist.view(), got_dist.view()), 0.0);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (got_pred(i, j) != exp_pred(i, j)) ++mismatches;
  EXPECT_EQ(mismatches, 0u)
      << "variant=" << variant_name(c.variant) << " tiled=" << c.tiled;

  // Independent sanity on top of bit-identity: the reconstructed paths are
  // valid optimal walks through the ORIGINAL edge set.
  const auto w = gen.full(static_cast<vertex_t>(n));
  for (vertex_t s2 = 0; s2 < static_cast<vertex_t>(n); ++s2)
    for (vertex_t t = 0; t < static_cast<vertex_t>(n); ++t) {
      if (s2 == t) continue;
      if (value_traits<float>::is_inf(got_dist(s2, t))) {
        EXPECT_EQ(got_pred(s2, t), -1);
        continue;
      }
      const auto path = reconstruct_path(got_pred.view(), s2, t);
      ASSERT_FALSE(path.empty()) << s2 << "->" << t;
      double len = 0;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        ASSERT_FALSE(value_traits<float>::is_inf(w(path[i], path[i + 1])))
            << "non-edge on path " << s2 << "->" << t;
        len += w(path[i], path[i + 1]);
      }
      EXPECT_EQ(static_cast<float>(len), got_dist(s2, t)) << s2 << "->" << t;
    }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsByPlacement, DistPathsParam,
    ::testing::Values(DistPathsCase{Variant::kBaseline, false},
                      DistPathsCase{Variant::kPipelined, false},
                      DistPathsCase{Variant::kAsync, false},
                      DistPathsCase{Variant::kOffload, false},
                      DistPathsCase{Variant::kBaseline, true},
                      DistPathsCase{Variant::kPipelined, true},
                      DistPathsCase{Variant::kAsync, true},
                      DistPathsCase{Variant::kOffload, true}),
    [](const ::testing::TestParamInfo<DistPathsCase>& info) {
      return std::string(variant_name(info.param.variant)) +
             (info.param.tiled ? "_tiled" : "_naive");
    });

TEST(DistPaths, RectangularGridsAlsoBitIdentical) {
  const std::size_t n = 48, b = 8;
  for (const auto [pr, pc] : {std::pair{1, 1}, std::pair{2, 3},
                              std::pair{3, 2}, std::pair{1, 4}}) {
    DenseEntryGen<float> gen(5200 + static_cast<std::uint64_t>(pr * 10 + pc),
                             0.7, 1.0f, 60.0f, /*integral=*/true);
    auto exp_dist = gen.full(static_cast<vertex_t>(n));
    Matrix<std::int64_t> exp_pred(n, n);
    init_predecessors<S>(exp_dist.view(), exp_pred.view());
    blocked_floyd_warshall_paths<S>(exp_dist.view(), exp_pred.view(), b);

    const auto grid = GridSpec::row_major(pr, pc);
    Matrix<float> got_dist;
    Matrix<std::int64_t> got_pred;
    mpi::Runtime::run(grid.size(), [&](mpi::Comm& world) {
      BlockCyclicMatrix<float> local(n, b, grid, grid.coord_of(world.rank()));
      BlockCyclicMatrix<std::int64_t> plocal(n, b, grid,
                                             grid.coord_of(world.rank()));
      local.fill(gen);
      init_predecessors_dist<S>(local, plocal);
      DistFwOptions opt;
      opt.block_size = b;
      parallel_fw<S>(world, local, plocal, opt);
      auto d = local.gather(world);
      auto p = plocal.gather(world);
      if (world.rank() == 0) {
        got_dist = std::move(d);
        got_pred = std::move(p);
      }
    });
    EXPECT_EQ(max_abs_diff<float>(exp_dist.view(), got_dist.view()), 0.0)
        << pr << "x" << pc;
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        if (got_pred(i, j) != exp_pred(i, j)) ++mismatches;
    EXPECT_EQ(mismatches, 0u) << pr << "x" << pc;
  }
}

// --- divide-and-conquer APSP (paper §6, Solomonik et al.) ----------------------

class DcApspParam : public ::testing::TestWithParam<std::tuple<int, int, int>> {};
// (pr, pc, nb)

TEST_P(DcApspParam, MatchesSequentialOracle) {
  const auto [pr, pc, nbi] = GetParam();
  const std::size_t b = 8;
  const std::size_t n = static_cast<std::size_t>(nbi) * b;
  DenseEntryGen<float> gen(6100 + static_cast<std::uint64_t>(pr * 100 + nbi),
                           0.5, 1.0f, 70.0f, /*integral=*/true);
  const auto expected = oracle(n, gen);

  const auto grid = GridSpec::row_major(pr, pc);
  Matrix<float> gathered;
  mpi::Runtime::run(grid.size(), [&](mpi::Comm& world) {
    BlockCyclicMatrix<float> local(n, b, grid, grid.coord_of(world.rank()));
    local.fill(gen);
    dc_apsp<S>(world, local);
    auto out = local.gather(world);
    if (world.rank() == 0) gathered = std::move(out);
  });
  ASSERT_EQ(gathered.rows(), n);
  EXPECT_EQ(max_abs_diff<float>(expected.view(), gathered.view()), 0.0)
      << pr << "x" << pc << " nb=" << nbi;
}

INSTANTIATE_TEST_SUITE_P(
    Grids, DcApspParam,
    ::testing::Values(std::tuple{1, 1, 4}, std::tuple{2, 2, 4},
                      std::tuple{2, 2, 7},   // odd split
                      std::tuple{2, 3, 6}, std::tuple{3, 2, 9},
                      std::tuple{2, 2, 8}, std::tuple{1, 4, 5}));

TEST(DcApsp, AgreesWithParallelFwAndMovesComparableVolume) {
  const std::size_t n = 96, b = 8;
  DenseEntryGen<float> gen(6200, 0.8, 1.0f, 90.0f, /*integral=*/true);
  const auto grid = GridSpec::row_major(2, 2);

  Matrix<float> via_fw, via_dc;
  const auto t_fw = mpi::Runtime::run(grid.size(), [&](mpi::Comm& world) {
    BlockCyclicMatrix<float> local(n, b, grid, grid.coord_of(world.rank()));
    local.fill(gen);
    DistFwOptions opt;
    opt.variant = Variant::kBaseline;
    opt.block_size = b;
    parallel_fw<S>(world, local, opt);
    auto out = local.gather(world);
    if (world.rank() == 0) via_fw = std::move(out);
  });
  const auto t_dc = mpi::Runtime::run(grid.size(), [&](mpi::Comm& world) {
    BlockCyclicMatrix<float> local(n, b, grid, grid.coord_of(world.rank()));
    local.fill(gen);
    dc_apsp<S>(world, local);
    auto out = local.gather(world);
    if (world.rank() == 0) via_dc = std::move(out);
  });
  EXPECT_EQ(max_abs_diff<float>(via_fw.view(), via_dc.view()), 0.0);
  // Same asymptotic volume class (each moves O(n²·√P-ish) per the SUMMA /
  // panel-broadcast structure); sanity-bound the ratio.
  EXPECT_LT(static_cast<double>(t_dc.bytes_total),
            3.0 * static_cast<double>(t_fw.bytes_total));
  EXPECT_GT(static_cast<double>(t_dc.bytes_total),
            0.2 * static_cast<double>(t_fw.bytes_total));
}

// --- traffic properties --------------------------------------------------------

TEST(ParallelFw, ReorderingReducesInternodeTraffic) {
  // 4x4 grid, 4 ranks/node (4 nodes). Row-major packing makes each node a
  // 1x4 slice (node grid K = 4x1): every process column spans all four
  // nodes, so each row-panel broadcast crosses three NICs. The paper's
  // placement (Figure 1: 2x2 node tiles, K = 2x2) halves the crossings in
  // each direction — the §3.4.1 K_r ≈ K_c optimum.
  const std::size_t n = 64, b = 8;
  DenseEntryGen<float> gen(80, 0.9, 1.0f, 100.0f, /*integral=*/true);
  DistFwOptions opt;
  opt.variant = Variant::kBaseline;
  opt.block_size = b;

  const auto naive =
      run_parallel_fw<S>(n, gen, GridSpec::row_major(4, 4), 4, opt);
  const auto tiled =
      run_parallel_fw<S>(n, gen, GridSpec::tiled(2, 2, 2, 2), 4, opt);
  EXPECT_EQ(max_abs_diff<float>(naive.dist.view(), tiled.dist.view()), 0.0);
  EXPECT_LT(tiled.traffic.bytes_internode, naive.traffic.bytes_internode);
  EXPECT_LE(tiled.traffic.max_nic_bytes, naive.traffic.max_nic_bytes);
}

TEST(ParallelFw, RingBcastIsNodeAware) {
  // With the node-aware ring, the async variant's panel broadcasts cross
  // each NIC exactly once per node chain — its internode volume must not
  // exceed the tree-based baseline's on the same tiled placement.
  const std::size_t n = 64, b = 8;
  DenseEntryGen<float> gen(82, 0.9, 1.0f, 100.0f, /*integral=*/true);
  const auto grid = GridSpec::tiled(2, 2, 2, 2);
  DistFwOptions base, async;
  base.variant = Variant::kBaseline;
  base.block_size = b;
  async.variant = Variant::kAsync;
  async.block_size = b;
  const auto t = run_parallel_fw<S>(n, gen, grid, 4, base);
  const auto r = run_parallel_fw<S>(n, gen, grid, 4, async);
  EXPECT_EQ(max_abs_diff<float>(t.dist.view(), r.dist.view()), 0.0);
  EXPECT_LE(r.traffic.bytes_internode, t.traffic.bytes_internode);
}

TEST(ParallelFw, AllVariantsMoveSameTotalPanelVolume) {
  // Tree and ring broadcasts are both volume-minimal, so baseline and
  // async runs must ship the same total byte count (schedule differs,
  // volume does not).
  const std::size_t n = 48, b = 8;
  DenseEntryGen<float> gen(81, 0.9, 1.0f, 100.0f, /*integral=*/true);
  const auto grid = GridSpec::row_major(2, 2);
  DistFwOptions base, async;
  base.variant = Variant::kBaseline;
  base.block_size = b;
  async.variant = Variant::kAsync;
  async.block_size = b;
  const auto r1 = run_parallel_fw<S>(n, gen, grid, 2, base);
  const auto r2 = run_parallel_fw<S>(n, gen, grid, 2, async);
  EXPECT_EQ(r1.traffic.bytes_total, r2.traffic.bytes_total);
}

}  // namespace
}  // namespace parfw::dist
