// Adapter hooks promoting the pre-telemetry counter structs into the
// metrics registry, so there is ONE export path (ISSUE 4 satellite 1).
//
// devsim::DeviceCounters and mpisim::TrafficStats predate the registry
// and stay as cheap back-compat views (tests and the supervision loop
// read them directly); these adapters publish a snapshot of either into
// a Registry under the canonical metric names, after which every exporter
// (JSON / Prometheus / table) sees them alongside the native metrics.
//
// Header-only on purpose: the telemetry library itself depends only on
// util+sched; including this header is what pulls in devsim/mpisim, so
// only call sites that already link those libraries pay the dependency.
#pragma once

#include <string>

#include "devsim/device.hpp"
#include "mpisim/runtime.hpp"
#include "telemetry/metrics.hpp"

namespace parfw::telemetry {

/// Publish a device's counters (allocator watermark, transfer-engine
/// traffic and busy time) under dev.* with the given label set (e.g.
/// "rank=3"). Counters are set as gauges because the adapter snapshots
/// absolute values, not deltas — re-publishing overwrites.
inline void publish_device_counters(Registry& r, const dev::DeviceCounters& c,
                                    const std::string& labels = "") {
  r.gauge("dev.bytes_h2d", labels).set(static_cast<double>(c.bytes_h2d));
  r.gauge("dev.bytes_d2h", labels).set(static_cast<double>(c.bytes_d2h));
  r.gauge("dev.kernels_launched", labels)
      .set(static_cast<double>(c.kernels_launched));
  r.gauge("dev.allocs", labels).set(static_cast<double>(c.allocs));
  r.gauge("dev.peak_bytes_in_use", labels)
      .set(static_cast<double>(c.peak_bytes_in_use));
  r.gauge("dev.h2d_seconds", labels).set(c.h2d_seconds);
  r.gauge("dev.d2h_seconds", labels).set(c.d2h_seconds);
}

/// As above, reading the counters and capacity from a live device.
/// `dev.mem_utilization` is peak bytes over capacity (the Figure 5/6
/// buffer-occupancy axis).
inline void publish_device(Registry& r, const dev::Device& d,
                           const std::string& labels = "") {
  const dev::DeviceCounters c = d.counters();
  publish_device_counters(r, c, labels);
  if (d.memory_bytes() > 0)
    r.gauge("dev.mem_utilization", labels)
        .set(static_cast<double>(c.peak_bytes_in_use) /
             static_cast<double>(d.memory_bytes()));
}

/// Publish a run's TrafficStats under mpi.* with the given label set.
/// The logical counters (messages / bytes) are the DES-comparable totals
/// — `mpi.bytes_total` published here is exactly what the reconciliation
/// report checks against perf::program_traffic. When the target registry
/// also received the World's LIVE series (RuntimeOptions::metrics), pass
/// a distinguishing label set (e.g. "scope=run") — the live series own
/// the unlabelled mpi.* namespace.
inline void publish_traffic_stats(Registry& r, const mpi::TrafficStats& s,
                                  const std::string& labels = "") {
  r.gauge("mpi.messages", labels).set(static_cast<double>(s.messages));
  r.gauge("mpi.bytes_total", labels).set(static_cast<double>(s.bytes_total));
  r.gauge("mpi.bytes_internode", labels)
      .set(static_cast<double>(s.bytes_internode));
  r.gauge("mpi.max_nic_bytes", labels)
      .set(static_cast<double>(s.max_nic_bytes));
  r.gauge("mpi.drops_injected", labels)
      .set(static_cast<double>(s.drops_injected));
  r.gauge("mpi.dups_injected", labels)
      .set(static_cast<double>(s.dups_injected));
  r.gauge("mpi.delays_injected", labels)
      .set(static_cast<double>(s.delays_injected));
  r.gauge("mpi.retries", labels).set(static_cast<double>(s.retries));
  r.gauge("mpi.retry_bytes", labels).set(static_cast<double>(s.retry_bytes));
  r.gauge("mpi.checkpoints", labels).set(static_cast<double>(s.checkpoints));
  r.gauge("mpi.checkpoint_bytes", labels)
      .set(static_cast<double>(s.checkpoint_bytes));
}

}  // namespace parfw::telemetry
