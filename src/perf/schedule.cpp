#include "perf/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "core/diag_update.hpp"
#include "util/rng.hpp"
#include "util/check.hpp"

namespace parfw::perf {

namespace {

/// Builder for per-rank op lists with the same collective expansions
/// (including node-aware relay order) as the functional mpisim runtime.
class ProgramBuilder {
 public:
  ProgramBuilder(const MachineConfig& m, const std::vector<int>& node_of,
                 int ranks)
      : m_(m), node_of_(node_of), progs_(static_cast<std::size_t>(ranks)) {}

  std::vector<RankProgram> take() { return std::move(progs_); }

  void comp(int w, double seconds) {
    progs_[static_cast<std::size_t>(w)].push_back(
        Op{Op::Kind::kComp, seconds, -1, 0, 0});
  }
  void send(int src, int dst, std::int64_t bytes, std::int32_t tag) {
    progs_[static_cast<std::size_t>(src)].push_back(
        Op{Op::Kind::kSend, 0.0, dst, bytes, tag});
  }
  void recv(int dst, int src, std::int32_t tag) {
    progs_[static_cast<std::size_t>(dst)].push_back(
        Op{Op::Kind::kRecv, 0.0, src, 0, tag});
  }

  /// Node-aware member order — MUST match mpisim's Comm::relay_order.
  std::vector<int> relay_order(const std::vector<int>& members,
                               int root_idx) const {
    const int p = static_cast<int>(members.size());
    int max_node = 0;
    for (int w : members) max_node = std::max(max_node, node_of_[static_cast<std::size_t>(w)]);
    const long long nnodes = max_node + 1;
    const int root_node =
        node_of_[static_cast<std::size_t>(members[static_cast<std::size_t>(root_idx)])];
    std::vector<int> order{root_idx};
    std::vector<std::pair<long long, int>> rest;
    for (int i = 0; i < p; ++i) {
      if (i == root_idx) continue;
      const long long nd =
          (node_of_[static_cast<std::size_t>(members[static_cast<std::size_t>(i)])] -
           root_node + nnodes) %
          nnodes;
      rest.emplace_back(nd * p + i, i);
    }
    std::sort(rest.begin(), rest.end());
    for (const auto& [key, i] : rest) order.push_back(i);
    return order;
  }

  using Filter = std::function<bool(int world_rank)>;

  /// Binomial-tree broadcast expansion. Ops are appended only for members
  /// accepted by `filter` (the pipelined schedule emits root-side and
  /// receive-side ops at different program points).
  void expand_tree(const std::vector<int>& members, int root_idx,
                   std::int64_t bytes, std::int32_t tag, const Filter& filter) {
    const int p = static_cast<int>(members.size());
    if (p <= 1 || bytes == 0) return;
    const std::vector<int> order = relay_order(members, root_idx);
    for (int v = 0; v < p; ++v) {
      const int w = members[static_cast<std::size_t>(order[static_cast<std::size_t>(v)])];
      if (!filter(w)) continue;
      int mask = 1;
      while (mask < p) {
        if ((v & mask) != 0) {
          recv(w, members[static_cast<std::size_t>(
                     order[static_cast<std::size_t>(v ^ mask)])],
               tag);
          break;
        }
        mask <<= 1;
      }
      mask >>= 1;
      while (mask > 0) {
        if (v + mask < p)
          send(w,
               members[static_cast<std::size_t>(
                   order[static_cast<std::size_t>(v + mask)])],
               bytes, tag);
        mask >>= 1;
      }
    }
  }

  /// Segmented ring broadcast with BACKGROUND relays: the payload flows
  /// along per-rank NIC agents (process ids agent_of(r)), decoupled from
  /// the ranks' own programs. Rank-side ops: the root posts a zero-byte
  /// "ready" to its agent once the data exists; every other member waits
  /// for a zero-byte "done" from its agent at its own program point.
  /// Agent ops are emitted only when `emit_agents` is set (the pipelined
  /// schedule touches a collective twice with complementary filters).
  void expand_ring_background(const std::vector<int>& members, int root_idx,
                              std::int64_t bytes, std::int32_t tag,
                              const Filter& filter, bool emit_agents,
                              const std::function<int(int)>& agent_of) {
    const int p = static_cast<int>(members.size());
    if (p <= 1 || bytes == 0) return;
    const std::vector<int> order = relay_order(members, root_idx);
    const std::int64_t nseg =
        std::clamp<std::int64_t>(bytes / (1 << 20), 1, 8);
    const std::int64_t seg = (bytes + nseg - 1) / nseg;
    const std::int32_t ready_tag = tag + (1 << 22);
    const std::int32_t done_tag = tag + (1 << 23);

    for (int v = 0; v < p; ++v) {
      const int w = members[static_cast<std::size_t>(order[static_cast<std::size_t>(v)])];
      const int agent = agent_of(w);
      // Rank-side ops (respect the caller's scheduling filter).
      if (filter(w)) {
        if (v == 0)
          send(w, agent, 0, ready_tag);  // data ready: agent may stream
        else
          recv(w, agent, done_tag);      // block until fully received
      }
      if (!emit_agents) continue;
      // Agent-side dataflow.
      const int succ_agent =
          v + 1 < p ? agent_of(members[static_cast<std::size_t>(
                          order[static_cast<std::size_t>(v + 1)])])
                    : -1;
      const int pred_agent =
          v > 0 ? agent_of(members[static_cast<std::size_t>(
                      order[static_cast<std::size_t>(v - 1)])])
                : -1;
      if (v == 0) {
        recv(agent, w, ready_tag);
        for (std::int64_t s2 = 0; s2 < nseg; ++s2)
          send(agent, succ_agent, std::min(seg, bytes - s2 * seg), tag);
      } else {
        for (std::int64_t s2 = 0; s2 < nseg; ++s2) {
          recv(agent, pred_agent, tag);
          if (succ_agent >= 0)
            send(agent, succ_agent, std::min(seg, bytes - s2 * seg), tag);
        }
        send(agent, w, 0, done_tag);
      }
    }
  }

  /// Segmented ring broadcast expansion.
  void expand_ring(const std::vector<int>& members, int root_idx,
                   std::int64_t bytes, std::int32_t tag, const Filter& filter) {
    const int p = static_cast<int>(members.size());
    if (p <= 1 || bytes == 0) return;
    const std::vector<int> order = relay_order(members, root_idx);
    // Few, large segments keep op counts tractable at 3072 ranks while
    // still modelling the relay pipelining.
    const std::int64_t nseg =
        std::clamp<std::int64_t>(bytes / (1 << 20), 1, 8);
    const std::int64_t seg = (bytes + nseg - 1) / nseg;
    for (int v = 0; v < p; ++v) {
      const int w = members[static_cast<std::size_t>(order[static_cast<std::size_t>(v)])];
      if (!filter(w)) continue;
      for (std::int64_t s = 0; s < nseg; ++s) {
        const std::int64_t len = std::min(seg, bytes - s * seg);
        if (v > 0)
          recv(w, members[static_cast<std::size_t>(
                     order[static_cast<std::size_t>(v - 1)])],
               tag);
        if (v + 1 < p)
          send(w,
               members[static_cast<std::size_t>(
                   order[static_cast<std::size_t>(v + 1)])],
               len, tag);
      }
    }
  }

 private:
  const MachineConfig& m_;
  const std::vector<int>& node_of_;
  std::vector<RankProgram> progs_;
};

bool accept_all(int) { return true; }

}  // namespace

BuiltProgram build_fw_program(const MachineConfig& m, const FwProblem& prob,
                              const dist::GridSpec& grid,
                              const std::vector<int>& node_of) {
  using dist::Variant;
  const int pr = grid.rows(), pc = grid.cols();
  const int P = grid.size();
  PARFW_CHECK(static_cast<int>(node_of.size()) == P);
  const bool bg_relays =
      prob.background_relays && prob.variant == Variant::kAsync;
  // Background relays add two NIC-agent processes per rank (row-panel and
  // col-panel chains get separate agents so their op streams never
  // interleave — provably deadlock-free FIFO chains).
  const int total_procs = bg_relays ? 3 * P : P;
  std::vector<int> full_node_of(static_cast<std::size_t>(total_procs));
  for (int i = 0; i < total_procs; ++i)
    full_node_of[static_cast<std::size_t>(i)] =
        node_of[static_cast<std::size_t>(i % P)];
  auto row_agent = [P](int w) { return P + w; };
  auto col_agent = [P](int w) { return 2 * P + w; };
  const double b = prob.b;
  const std::size_t nb = static_cast<std::size_t>(prob.n / prob.b);
  PARFW_CHECK_MSG(nb >= static_cast<std::size_t>(std::max(pr, pc)),
                  "need >= 1 block per process row/column");
  const double word = m.word_bytes;

  ProgramBuilder builder(m, full_node_of, total_procs);
  const double comp_scale = prob.comm_only ? 0.0 : 1.0;
  // Deterministic straggler jitter: factor in [1, 1 + comp_jitter],
  // hashed from (rank, per-rank op ordinal).
  std::vector<std::uint64_t> jitter_ctr(static_cast<std::size_t>(P), 0);
  auto jittered = [&](int w, double secs) {
    if (prob.comp_jitter <= 0.0 || secs <= 0.0) return secs;
    std::uint64_t h = 0x9e3779b97f4a7c15ull *
                      (static_cast<std::uint64_t>(w) * 1000003 +
                       ++jitter_ctr[static_cast<std::size_t>(w)]);
    const double u = static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;
    return secs * (1.0 + prob.comp_jitter * u);
  };

  // Communicator member lists (world ranks).
  std::vector<std::vector<int>> col_members(static_cast<std::size_t>(pc));
  std::vector<std::vector<int>> row_members(static_cast<std::size_t>(pr));
  for (int r = 0; r < pr; ++r)
    for (int c = 0; c < pc; ++c) {
      const int w = grid.world_rank({r, c});
      col_members[static_cast<std::size_t>(c)].push_back(w);  // index r
      row_members[static_cast<std::size_t>(r)].push_back(w);  // index c
    }

  // Blocks owned per direction, per grid row/col index.
  auto owned = [nb](int mine, int p) {
    const std::size_t ms = static_cast<std::size_t>(mine);
    return ms >= nb ? 0.0
                    : static_cast<double>((nb - ms - 1) /
                                              static_cast<std::size_t>(p) +
                                          1);
  };

  // Compute ops run at the full GPU rate; the DES serialises the two
  // ranks sharing a GPU on the device resource, which yields the
  // effective per-rank half rate without double counting.
  const double rate = m.srgemm_flops;
  const double diag_secs =
      diag_update_flops(static_cast<std::size_t>(b), DiagStrategy::kLogSquaring) /
      rate;

  // Per-rank OuterUpdate duration for one iteration.
  auto outer_secs = [&](int r, int c) {
    const double mloc = owned(r, pr) * b;
    const double nloc = owned(c, pc) * b;
    const double flops = 2.0 * mloc * nloc * b;
    if (prob.variant != Variant::kOffload) return flops / rate;
    // Offload: chunked through the device; §4.5 pipeline with 3 streams.
    // hostUpdate runs at the contended per-rank DRAM share.
    MachineConfig shared = m;
    shared.dram_bw = m.dram_bw_shared;
    const double mx = std::min(prob.offload_mx, std::max(mloc, 1.0));
    const double nx = std::min(prob.offload_mx, std::max(nloc, 1.0));
    // Whole-strip phase totals (panels uploaded once, §4.4); fill/drain
    // adds roughly one chunk's worth of the non-overlapped phases.
    const OogCost whole = model_oog_cost(shared, mloc, nloc, b);
    const double chunk_frac = (mx * nx) / (mloc * nloc);
    const double fill =
        (whole.t0 + whole.t1 + whole.t2 - whole.total(3)) * chunk_frac;
    return whole.total(3) + fill;
  };

  auto panel_secs_row = [&](int c) {
    return 2.0 * b * b * owned(c, pc) * b / rate;
  };
  auto panel_secs_col = [&](int r) {
    return 2.0 * owned(r, pr) * b * b * b / rate;
  };
  auto rowp_bytes = [&](int c) {
    return static_cast<std::int64_t>(b * owned(c, pc) * b * word);
  };
  auto colp_bytes = [&](int r) {
    return static_cast<std::int64_t>(owned(r, pr) * b * b * word);
  };
  const std::int64_t diag_bytes = static_cast<std::int64_t>(b * b * word);

  auto tag_of = [](std::size_t k, int phase) {
    return static_cast<std::int32_t>(8 * k + static_cast<std::size_t>(phase));
  };

  const bool pipelined = prob.variant == Variant::kPipelined ||
                         prob.variant == Variant::kAsync;
  const bool ring = prob.variant == Variant::kAsync;

  auto diag_phase = [&](std::size_t k) {
    const int krow = static_cast<int>(k % static_cast<std::size_t>(pr));
    const int kcol = static_cast<int>(k % static_cast<std::size_t>(pc));
    { const int w_ = grid.world_rank({krow, kcol}); builder.comp(w_, jittered(w_, comp_scale * diag_secs)); }
    builder.expand_tree(row_members[static_cast<std::size_t>(krow)], kcol,
                        diag_bytes, tag_of(k, 0), accept_all);
    builder.expand_tree(col_members[static_cast<std::size_t>(kcol)], krow,
                        diag_bytes, tag_of(k, 1), accept_all);
  };

  auto panel_update_phase = [&](std::size_t k) {
    const int krow = static_cast<int>(k % static_cast<std::size_t>(pr));
    const int kcol = static_cast<int>(k % static_cast<std::size_t>(pc));
    for (int c = 0; c < pc; ++c)
      { const int w_ = grid.world_rank({krow, c}); builder.comp(w_, jittered(w_, comp_scale * panel_secs_row(c))); }
    for (int r = 0; r < pr; ++r)
      { const int w_ = grid.world_rank({r, kcol}); builder.comp(w_, jittered(w_, comp_scale * panel_secs_col(r))); }
  };

  // Panel broadcast expansions, filtered per direction so the pipelined
  // schedule emits the root side early and the receive side late —
  // mirroring dist::parallel_fw exactly.
  auto row_panel_bcasts = [&](std::size_t k, const ProgramBuilder::Filter& f,
                              bool emit_agents) {
    const int krow = static_cast<int>(k % static_cast<std::size_t>(pr));
    for (int c = 0; c < pc; ++c) {
      if (bg_relays)
        builder.expand_ring_background(col_members[static_cast<std::size_t>(c)],
                                       krow, rowp_bytes(c), tag_of(k, 2), f,
                                       emit_agents, row_agent);
      else if (ring)
        builder.expand_ring(col_members[static_cast<std::size_t>(c)], krow,
                            rowp_bytes(c), tag_of(k, 2), f);
      else
        builder.expand_tree(col_members[static_cast<std::size_t>(c)], krow,
                            rowp_bytes(c), tag_of(k, 2), f);
    }
  };
  auto col_panel_bcasts = [&](std::size_t k, const ProgramBuilder::Filter& f,
                              bool emit_agents) {
    const int kcol = static_cast<int>(k % static_cast<std::size_t>(pc));
    for (int r = 0; r < pr; ++r) {
      if (bg_relays)
        builder.expand_ring_background(row_members[static_cast<std::size_t>(r)],
                                       kcol, colp_bytes(r), tag_of(k, 3), f,
                                       emit_agents, col_agent);
      else if (ring)
        builder.expand_ring(row_members[static_cast<std::size_t>(r)], kcol,
                            colp_bytes(r), tag_of(k, 3), f);
      else
        builder.expand_tree(row_members[static_cast<std::size_t>(r)], kcol,
                            colp_bytes(r), tag_of(k, 3), f);
    }
  };
  auto panel_bcast_phase = [&](std::size_t k, const ProgramBuilder::Filter& f) {
    row_panel_bcasts(k, f, /*emit_agents=*/true);
    col_panel_bcasts(k, f, /*emit_agents=*/true);
  };

  auto outer_phase = [&](std::size_t /*k*/) {
    for (int r = 0; r < pr; ++r)
      for (int c = 0; c < pc; ++c)
        { const int w_ = grid.world_rank({r, c}); builder.comp(w_, jittered(w_, comp_scale * outer_secs(r, c))); }
  };

  if (!pipelined) {
    for (std::size_t k = 0; k < nb; ++k) {
      diag_phase(k);
      panel_update_phase(k);
      panel_bcast_phase(k, accept_all);
      outer_phase(k);
    }
    return BuiltProgram{builder.take(), std::move(full_node_of)};
  }

  // Pipelined / async (Algorithm 4 ordering, mirroring dist::parallel_fw).
  diag_phase(0);
  panel_update_phase(0);
  panel_bcast_phase(0, accept_all);
  for (std::size_t k = 0; k < nb; ++k) {
    const std::size_t k1 = k + 1;
    if (k1 < nb) {
      const int k1row = static_cast<int>(k1 % static_cast<std::size_t>(pr));
      const int k1col = static_cast<int>(k1 % static_cast<std::size_t>(pc));
      // Look-ahead OuterUpdate(k) restricted to the (k+1) panels.
      for (int c = 0; c < pc; ++c)
        { const int w_ = grid.world_rank({k1row, c});
          builder.comp(w_, jittered(w_, comp_scale * 2.0 * b * owned(c, pc) * b * b / rate)); }
      for (int r = 0; r < pr; ++r)
        { const int w_ = grid.world_rank({r, k1col});
          builder.comp(w_, jittered(w_, comp_scale * 2.0 * owned(r, pr) * b * b * b / rate)); }
      diag_phase(k1);
      panel_update_phase(k1);
      // Root side of PanelBcast(k+1) before the bulk OuterUpdate(k);
      // agent dataflow is emitted here (once per collective).
      auto in_k1row = [&](int w) { return grid.coord_of(w).row == k1row; };
      auto in_k1col = [&](int w) { return grid.coord_of(w).col == k1col; };
      row_panel_bcasts(k1, in_k1row, /*emit_agents=*/true);
      col_panel_bcasts(k1, in_k1col, /*emit_agents=*/true);
      outer_phase(k);
      // ...and the receive side after it.
      row_panel_bcasts(k1, [&](int w) { return !in_k1row(w); },
                       /*emit_agents=*/false);
      col_panel_bcasts(k1, [&](int w) { return !in_k1col(w); },
                       /*emit_agents=*/false);
    } else {
      outer_phase(k);
    }
  }
  return BuiltProgram{builder.take(), std::move(full_node_of)};
}

std::vector<RankProgram> build_bcast_program(const MachineConfig& m, int ranks,
                                             std::int64_t bytes, bool ring,
                                             const std::vector<int>& node_of) {
  ProgramBuilder builder(m, node_of, ranks);
  std::vector<int> members(static_cast<std::size_t>(ranks));
  for (int i = 0; i < ranks; ++i) members[static_cast<std::size_t>(i)] = i;
  if (ring)
    builder.expand_ring(members, 0, bytes, 1, accept_all);
  else
    builder.expand_tree(members, 0, bytes, 1, accept_all);
  return builder.take();
}

}  // namespace parfw::perf
