// Simulated-device tests: memory capacity, stream ordering, events,
// cross-stream concurrency, transfer accounting, throttling.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "devsim/device.hpp"
#include "util/timer.hpp"

namespace parfw::dev {
namespace {

TEST(DeviceMemory, CapacityEnforced) {
  DeviceConfig cfg;
  cfg.memory_bytes = 1024;
  Device d(cfg);
  auto a = d.alloc<float>(128);  // 512 B
  EXPECT_EQ(d.bytes_in_use(), 512u);
  auto b = d.alloc<float>(128);  // another 512 B, exactly full
  EXPECT_EQ(d.bytes_free(), 0u);
  EXPECT_THROW(d.alloc<float>(1), DeviceOutOfMemory);
}

TEST(DeviceMemory, FreeingReturnsCapacity) {
  DeviceConfig cfg;
  cfg.memory_bytes = 1024;
  Device d(cfg);
  {
    auto a = d.alloc<double>(64);  // 512 B
    EXPECT_EQ(d.bytes_in_use(), 512u);
  }
  EXPECT_EQ(d.bytes_in_use(), 0u);
  auto b = d.alloc<double>(128);  // now fits
  EXPECT_TRUE(b.valid());
}

TEST(DeviceMemory, PeakTracksHighWater) {
  DeviceConfig cfg;
  cfg.memory_bytes = 4096;
  Device d(cfg);
  {
    auto a = d.alloc<char>(1000);
    auto b = d.alloc<char>(2000);
  }
  auto c = d.alloc<char>(100);
  EXPECT_EQ(d.counters().peak_bytes_in_use, 3000u);
}

TEST(DeviceBuffer, MoveSemantics) {
  Device d;
  auto a = d.alloc<int>(10);
  int* p = a.data();
  auto b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_FALSE(a.valid());
}

TEST(Stream, OpsExecuteInOrder) {
  Device d;
  auto s = d.create_stream();
  std::vector<int> order;
  for (int i = 0; i < 50; ++i)
    d.launch(*s, [&order, i] { order.push_back(i); });
  s->synchronize();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Stream, AsyncWithRespectToHost) {
  Device d;
  auto s = d.create_stream();
  std::atomic<bool> release{false};
  std::atomic<bool> ran{false};
  d.launch(*s, [&] {
    while (!release.load()) std::this_thread::yield();
    ran.store(true);
  });
  // The launch must return while the kernel is still blocked.
  EXPECT_FALSE(ran.load());
  release.store(true);
  s->synchronize();
  EXPECT_TRUE(ran.load());
}

TEST(Stream, EventsSignalAtRecordPoint) {
  Device d;
  auto s = d.create_stream();
  std::atomic<bool> release{false};
  d.launch(*s, [&] {
    while (!release.load()) std::this_thread::yield();
  });
  Event e = s->record();
  EXPECT_FALSE(e.query());
  release.store(true);
  e.wait();
  EXPECT_TRUE(e.query());
}

TEST(Stream, DistinctStreamsRunConcurrently) {
  Device d;
  auto s1 = d.create_stream();
  auto s2 = d.create_stream();
  std::atomic<bool> s1_entered{false};
  std::atomic<bool> s2_done{false};
  d.launch(*s1, [&] {
    s1_entered.store(true);
    while (!s2_done.load()) std::this_thread::yield();  // waits on stream 2
  });
  d.launch(*s2, [&] {
    while (!s1_entered.load()) std::this_thread::yield();
    s2_done.store(true);
  });
  d.synchronize();  // would deadlock if streams shared a worker
  SUCCEED();
}

TEST(Transfers, CopyAndAccounting) {
  Device d;
  auto s = d.create_stream();
  auto dev = d.alloc<float>(256);
  std::vector<float> host(256);
  for (std::size_t i = 0; i < host.size(); ++i) host[i] = static_cast<float>(i);
  d.memcpy_h2d(*s, dev.data(), host.data(), 256 * sizeof(float));
  std::vector<float> back(256, -1.0f);
  d.memcpy_d2h(*s, back.data(), dev.data(), 256 * sizeof(float));
  s->synchronize();
  EXPECT_EQ(back, host);
  const auto c = d.counters();
  EXPECT_EQ(c.bytes_h2d, 256 * sizeof(float));
  EXPECT_EQ(c.bytes_d2h, 256 * sizeof(float));
}

TEST(Transfers, ThrottledCopyTakesModelledTime) {
  DeviceConfig cfg;
  cfg.h2d.bytes_per_sec = 1e6;  // 1 MB/s
  Device d(cfg);
  auto s = d.create_stream();
  auto dev = d.alloc<char>(50000);
  std::vector<char> host(50000, 7);
  parfw::Timer t;
  d.memcpy_h2d(*s, dev.data(), host.data(), host.size());
  s->synchronize();
  EXPECT_GE(t.seconds(), 0.045);  // modelled 50 ms
}

TEST(Counters, KernelLaunchesCounted) {
  Device d;
  auto s = d.create_stream();
  for (int i = 0; i < 7; ++i) d.launch(*s, [] {});
  s->synchronize();
  EXPECT_EQ(d.counters().kernels_launched, 7u);
  d.reset_counters();
  EXPECT_EQ(d.counters().kernels_launched, 0u);
}

TEST(Device, SynchronizeDrainsAllStreams) {
  Device d;
  auto s1 = d.create_stream();
  auto s2 = d.create_stream();
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    d.launch(*s1, [&] { done.fetch_add(1); });
    d.launch(*s2, [&] { done.fetch_add(1); });
  }
  d.synchronize();
  EXPECT_EQ(done.load(), 40);
}

}  // namespace
}  // namespace parfw::dev
