# Empty dependencies file for distributed_apsp.
# This may be replaced when dependencies are built.
