// Checkpoint/restart for long APSP runs.
//
// A 1.66M-vertex FW run on 64 Summit nodes takes hours; leadership
// systems require applications to survive node failures. Blocked FW is
// naturally checkpointable: after iteration k the matrix state fully
// determines the remaining work, so a checkpoint is (header, k, matrix)
// and restart is "run the block loop from k".
//
// Format: a fixed 40-byte header (magic, version, element size, n, next
// block iteration, block size) followed by the raw row-major matrix.
#pragma once

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>

#include "core/blocked_fw.hpp"
#include "util/matrix.hpp"

namespace parfw {

struct CheckpointHeader {
  static constexpr std::uint64_t kMagic = 0x50464b43'50415246ull;  // "PARFWCKP"
  std::uint64_t magic = kMagic;
  std::uint32_t version = 1;
  std::uint32_t elem_size = 0;
  std::uint64_t n = 0;
  std::uint64_t next_block = 0;  ///< first UNfinished block iteration
  std::uint64_t block_size = 0;
};

/// Write a checkpoint of an in-progress (or finished) blocked FW run.
template <typename T>
void save_checkpoint(std::ostream& out, MatrixView<const T> dist,
                     std::size_t next_block, std::size_t block_size) {
  PARFW_CHECK(dist.rows() == dist.cols());
  CheckpointHeader h;
  h.elem_size = sizeof(T);
  h.n = dist.rows();
  h.next_block = next_block;
  h.block_size = block_size;
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
  for (std::size_t i = 0; i < dist.rows(); ++i)
    out.write(reinterpret_cast<const char*>(dist.data() + i * dist.ld()),
              static_cast<std::streamsize>(dist.cols() * sizeof(T)));
  PARFW_CHECK_MSG(out.good(), "checkpoint write failed");
}

/// Result of load_checkpoint: the matrix plus where to resume.
template <typename T>
struct LoadedCheckpoint {
  Matrix<T> dist;
  std::size_t next_block = 0;
  std::size_t block_size = 0;
};

template <typename T>
LoadedCheckpoint<T> load_checkpoint(std::istream& in) {
  CheckpointHeader h;
  in.read(reinterpret_cast<char*>(&h), sizeof(h));
  PARFW_CHECK_MSG(in.good() && h.magic == CheckpointHeader::kMagic,
                  "not a parallelfw checkpoint");
  PARFW_CHECK_MSG(h.version == 1, "unsupported checkpoint version " << h.version);
  PARFW_CHECK_MSG(h.elem_size == sizeof(T),
                  "checkpoint element size " << h.elem_size
                                             << " != requested " << sizeof(T));
  LoadedCheckpoint<T> out;
  out.dist = Matrix<T>(static_cast<std::size_t>(h.n),
                       static_cast<std::size_t>(h.n));
  in.read(reinterpret_cast<char*>(out.dist.data()),
          static_cast<std::streamsize>(h.n * h.n * sizeof(T)));
  PARFW_CHECK_MSG(in.good(), "checkpoint payload truncated");
  out.next_block = static_cast<std::size_t>(h.next_block);
  out.block_size = static_cast<std::size_t>(h.block_size);
  return out;
}

}  // namespace parfw
