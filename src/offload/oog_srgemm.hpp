// ooGSrGemm — out-of-device semiring matrix multiplication (paper §4.3–4.4).
//
// Computes C ← C ⊕ A ⊗ B where C (m x n) lives on the HOST and is too big
// for device memory; A (m x k) and B (k x n) are thin panels (m, n ≫ k).
//
// Decomposition: A into row panels A_i (m_x x k), B into column panels
// B_j (k x n_x). For each output chunk C_ij, a stream r = next in
// round-robin runs:
//     SrGemm:    X_r ← A_i ⊗ B_j           (device kernel)
//     d2hXfer:   staging_r ← X_r           (device→host copy)
// and the host, consuming streams in initiation order, applies
//     hostUpdate: C_ij ← C_ij ⊕ staging_r  (CPU, DRAM-bandwidth bound)
// With s ≥ 3 streams all three phases overlap (paper Figure 2; cost
// max{t0,t1,t2} per §4.5).
//
// A_i / B_j are uploaded to the device once, on first use, and reused for
// every block in their row/column (§4.4's panel-caching pipeline).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "devsim/device.hpp"
#include "sched/trace.hpp"
#include "semiring/semiring.hpp"
#include "srgemm/srgemm.hpp"
#include "telemetry/metrics.hpp"
#include "util/matrix.hpp"

namespace parfw::offload {

struct OogConfig {
  std::size_t mx = 2048;       ///< device buffer rows
  std::size_t nx = 2048;       ///< device buffer cols
  std::size_t num_streams = 3; ///< s; 1 = fully serial, 3 = full overlap
  srgemm::Config gemm{};       ///< device-kernel tiling
  /// When set, each retired chunk's hostUpdate is recorded ("oogHost",
  /// bytes = chunk size) on the sched::now_seconds() timeline, plus the
  /// device-pipeline handoff pair: "oogDev" (kSend instant at chunk
  /// launch) joined to "oogWait" (kRecv span over the completion wait)
  /// through a per-rank device channel, so causal analysis sees the
  /// stream ordering.
  sched::TraceSink* trace = nullptr;
  int trace_rank = 0;  ///< rank attributed to the events (devsim is local)
  /// When set, the pipeline lands series into this registry:
  /// oog.inflight_depth / oog.inflight_max gauges (X-buffer occupancy —
  /// depth s means full compute/transfer/hostUpdate overlap),
  /// oog.host_update_seconds histogram, and oog.bytes_h2d / oog.bytes_d2h
  /// transfer counters.
  telemetry::Registry* metrics = nullptr;
};

/// Statistics of one ooGSrGemm invocation (validated by tests against the
/// §4.5 cost model's data-volume terms).
struct OogStats {
  std::size_t blocks = 0;
  std::size_t elems_h2d = 0;  ///< panel uploads: (m + n) * k
  std::size_t elems_d2h = 0;  ///< result downloads: m * n (padded chunks)
};

/// Variant for DEVICE-RESIDENT panels: dA addresses an m x k block with
/// leading dimension lda inside a device image; dB a k x n block with
/// leading dimension ldb (e.g. the panels the offload FW just produced
/// on-device during PanelUpdate). No uploads happen; only the result
/// chunks stream back (§4.4's "A_i and B_j need to be sent only once"
/// taken to its conclusion inside one iteration).
template <typename S>
OogStats oog_srgemm_device(dev::Device& device,
                           const typename S::value_type* dA, std::size_t lda,
                           const typename S::value_type* dB, std::size_t ldb,
                           std::size_t m, std::size_t n, std::size_t k,
                           MatrixView<typename S::value_type> C,
                           const OogConfig& cfg = {});

template <typename S>
OogStats oog_srgemm(dev::Device& device,
                    MatrixView<const typename S::value_type> A,
                    MatrixView<const typename S::value_type> B,
                    MatrixView<typename S::value_type> C,
                    const OogConfig& cfg = {}) {
  using T = typename S::value_type;
  PARFW_CHECK(A.rows() == C.rows() && B.cols() == C.cols() &&
              A.cols() == B.rows());
  PARFW_CHECK(cfg.mx > 0 && cfg.nx > 0 && cfg.num_streams > 0);
  OogStats stats;
  if (C.empty() || A.cols() == 0) return stats;

  const std::size_t m = C.rows(), n = C.cols(), k = A.cols();
  const std::size_t mb = (m + cfg.mx - 1) / cfg.mx;
  const std::size_t nb = (n + cfg.nx - 1) / cfg.nx;
  const std::size_t s = cfg.num_streams;

  // Device-resident panel caches (uploaded on first use) and X buffers.
  dev::DeviceBuffer<T> dA = device.alloc<T>(m * k);
  dev::DeviceBuffer<T> dB = device.alloc<T>(k * n);
  std::vector<dev::DeviceBuffer<T>> X;
  std::vector<AlignedBuffer<T>> staging;  // host-side d2h landing zones
  X.reserve(s);
  staging.reserve(s);
  for (std::size_t r = 0; r < s; ++r) {
    X.push_back(device.alloc<T>(cfg.mx * cfg.nx));
    staging.emplace_back(cfg.mx * cfg.nx);
  }

  std::vector<dev::Device::StreamPtr> streams;
  streams.reserve(s);
  for (std::size_t r = 0; r < s; ++r) streams.push_back(device.create_stream());

  // Upload events: consumers of a cached panel wait on its upload fence.
  std::vector<dev::Event> a_ready(mb), b_ready(nb);
  std::vector<bool> a_up(mb, false), b_up(nb, false);

  auto upload_a = [&](std::size_t i, dev::Stream& st) {
    const std::size_t r0 = i * cfg.mx;
    const std::size_t nr = std::min(cfg.mx, m - r0);
    // Row panels of A are contiguous only when A.ld() == k; copy row-wise.
    for (std::size_t row = 0; row < nr; ++row)
      device.memcpy_h2d(st, dA.data() + (r0 + row) * k,
                        A.data() + (r0 + row) * A.ld(), k * sizeof(T));
    stats.elems_h2d += nr * k;
    if (cfg.metrics)
      cfg.metrics->counter("oog.bytes_h2d").add(nr * k * sizeof(T));
    a_ready[i] = st.record();
    a_up[i] = true;
  };
  auto upload_b = [&](std::size_t j, dev::Stream& st) {
    const std::size_t c0 = j * cfg.nx;
    const std::size_t nc = std::min(cfg.nx, n - c0);
    // dB stored column-chunked: panel j occupies rows [0,k) x [c0, c0+nc)
    // of a k x n row-major device image.
    for (std::size_t row = 0; row < k; ++row)
      device.memcpy_h2d(st, dB.data() + row * n + c0,
                        B.data() + row * B.ld() + c0, nc * sizeof(T));
    stats.elems_h2d += k * nc;
    if (cfg.metrics)
      cfg.metrics->counter("oog.bytes_h2d").add(k * nc * sizeof(T));
    b_ready[j] = st.record();
    b_up[j] = true;
  };

  struct Pending {
    dev::Event done;
    std::size_t i, j, r;
    std::uint64_t seq;
  };
  std::deque<Pending> inflight;
  // Device-pipeline causality: chunk launch ("oogDev", kSend) joins the
  // host's completion wait ("oogWait", kRecv) through a per-rank device
  // channel — the offload analogue of a message edge.
  std::uint64_t chunk_seq = 0;
  const std::uint64_t dev_ctx =
      sched::kDeviceChannelCtx + static_cast<std::uint64_t>(cfg.trace_rank);

  auto host_update = [&](const Pending& p) {
    const std::size_t r0 = p.i * cfg.mx, c0 = p.j * cfg.nx;
    const std::size_t nr = std::min(cfg.mx, m - r0);
    const std::size_t nc = std::min(cfg.nx, n - c0);
    const bool timed = cfg.trace != nullptr || cfg.metrics != nullptr;
    const double t0 = timed ? sched::now_seconds() : 0.0;
    MatrixView<const T> xv(staging[p.r].data(), nr, nc, cfg.nx);
    srgemm::ewise_add<S>(xv, C.sub(r0, c0, nr, nc), cfg.gemm.pool);
    if (timed) {
      const double t1 = sched::now_seconds();
      if (cfg.trace)
        cfg.trace->record(sched::TraceEvent{
            cfg.trace_rank, "oogHost", 0, t0, t1,
            static_cast<std::int64_t>(nr * nc * sizeof(T)), 0.0});
      if (cfg.metrics)
        cfg.metrics->histogram("oog.host_update_seconds").observe(t1 - t0);
    }
  };
  auto retire = [&](const Pending& p) {
    const double t0 = cfg.trace ? sched::now_seconds() : 0.0;
    p.done.wait();
    if (cfg.trace) {
      sched::TraceEvent e{cfg.trace_rank, "oogWait", 0, t0,
                          sched::now_seconds(), 0, 0.0};
      e.ek = sched::EventKind::kRecv;
      e.peer = cfg.trace_rank;
      e.ctx = dev_ctx;
      e.seq = p.seq;
      cfg.trace->record(e);
    }
    host_update(p);
  };

  std::size_t next_stream = 0;
  for (std::size_t i = 0; i < mb; ++i) {
    for (std::size_t j = 0; j < nb; ++j) {
      const std::size_t r = next_stream;
      next_stream = (next_stream + 1) % s;
      dev::Stream& st = *streams[r];

      // Retire the oldest block on this buffer before reusing it.
      if (inflight.size() >= s) {
        const Pending p = inflight.front();
        inflight.pop_front();
        retire(p);
      }

      if (!a_up[i]) upload_a(i, st);
      if (!b_up[j]) upload_b(j, st);
      const dev::Event a_ev = a_ready[i];
      const dev::Event b_ev = b_ready[j];

      const std::size_t r0 = i * cfg.mx, c0 = j * cfg.nx;
      const std::size_t nr = std::min(cfg.mx, m - r0);
      const std::size_t nc = std::min(cfg.nx, n - c0);

      T* xr = X[r].data();
      const T* a_panel = dA.data() + r0 * k;
      const T* b_panel = dB.data() + c0;
      const srgemm::Config gemm = cfg.gemm;
      const std::size_t ldx = cfg.nx;
      device.launch(st, [=] {
        a_ev.wait();  // cross-stream dependency on the cached uploads
        b_ev.wait();
        MatrixView<T> xv(xr, nr, nc, ldx);
        xv.fill(S::zero());
        // The cached device panels are dense and reused across every block
        // in their row/column — the prepacked fast path (§4.4).
        srgemm::multiply_prepacked<S>(MatrixView<const T>(a_panel, nr, k, k),
                                      MatrixView<const T>(b_panel, k, nc, n),
                                      xv, gemm);
      });
      // d2hXfer of the nr x nc chunk (row-wise to keep staging layout).
      device.memcpy_d2h(st, staging[r].data(), xr,
                        ((nr - 1) * ldx + nc) * sizeof(T));
      stats.elems_d2h += nr * nc;

      inflight.push_back(Pending{st.record(), i, j, r, chunk_seq});
      if (cfg.trace) {
        const double t = sched::now_seconds();
        sched::TraceEvent e{cfg.trace_rank, "oogDev", 0, t, t,
                            static_cast<std::int64_t>(nr * nc * sizeof(T)),
                            0.0};
        e.ek = sched::EventKind::kSend;
        e.peer = cfg.trace_rank;
        e.ctx = dev_ctx;
        e.seq = chunk_seq;
        cfg.trace->record(e);
      }
      ++chunk_seq;
      if (cfg.metrics) {
        cfg.metrics->counter("oog.bytes_d2h")
            .add(((nr - 1) * ldx + nc) * sizeof(T));
        const double depth = static_cast<double>(inflight.size());
        cfg.metrics->gauge("oog.inflight_depth").set(depth);
        cfg.metrics->gauge("oog.inflight_max").update_max(depth);
      }
      ++stats.blocks;
    }
  }

  while (!inflight.empty()) {
    const Pending p = inflight.front();
    inflight.pop_front();
    retire(p);
  }
  stats.blocks = mb * nb;
  return stats;
}

/// ooGSrGemm with predecessor tracking: C ← C ⊕ A ⊗ B where every strict
/// improvement also rewrites predC(i,j) ← predB(t,j). The pipeline is the
/// value pipeline plus a pred lane: B's pred panel rides the (cached)
/// panel uploads, each chunk streams back an Xpred image alongside X, and
/// hostUpdate merges both via ewise_add_with_pred.
///
/// Bit-identity with the fused host kernel: the device chunk computes X
/// zero-filled, so Xpred(i,j) is the FIRST t (ascending) attaining the
/// chunk's minimum, and the strict-improvement host merge keeps exactly
/// the lanes where that minimum beats C — composing to the same
/// first-t-attaining-global-min scan multiply_with_pred performs in one
/// pass. Lanes the chunk never improved still hold S::zero(), which (as
/// the ⊕-identity) can never strictly improve C, so their Xpred filler
/// (-1) is never observed.
///
/// OogStats counts VALUE elements only (comparable to the §4.5 model's
/// data-volume terms); the oog.bytes_h2d/d2h metrics include the pred
/// bytes, which is what makes the paths overhead visible to telemetry.
template <typename S>
OogStats oog_srgemm_pred(dev::Device& device,
                         MatrixView<const typename S::value_type> A,
                         MatrixView<const typename S::value_type> B,
                         MatrixView<typename S::value_type> C,
                         MatrixView<const std::int64_t> predB,
                         MatrixView<std::int64_t> predC,
                         const OogConfig& cfg = {}) {
  using T = typename S::value_type;
  using P = std::int64_t;
  PARFW_CHECK(A.rows() == C.rows() && B.cols() == C.cols() &&
              A.cols() == B.rows());
  PARFW_CHECK(predB.rows() == B.rows() && predB.cols() == B.cols());
  PARFW_CHECK(predC.rows() == C.rows() && predC.cols() == C.cols());
  PARFW_CHECK(cfg.mx > 0 && cfg.nx > 0 && cfg.num_streams > 0);
  OogStats stats;
  if (C.empty() || A.cols() == 0) return stats;

  const std::size_t m = C.rows(), n = C.cols(), k = A.cols();
  const std::size_t mb = (m + cfg.mx - 1) / cfg.mx;
  const std::size_t nb = (n + cfg.nx - 1) / cfg.nx;
  const std::size_t s = cfg.num_streams;

  dev::DeviceBuffer<T> dA = device.alloc<T>(m * k);
  dev::DeviceBuffer<T> dB = device.alloc<T>(k * n);
  dev::DeviceBuffer<P> dPB = device.alloc<P>(k * n);
  std::vector<dev::DeviceBuffer<T>> X;
  std::vector<dev::DeviceBuffer<P>> XP;
  std::vector<AlignedBuffer<T>> staging;
  std::vector<AlignedBuffer<P>> staging_pred;
  X.reserve(s);
  XP.reserve(s);
  staging.reserve(s);
  staging_pred.reserve(s);
  for (std::size_t r = 0; r < s; ++r) {
    X.push_back(device.alloc<T>(cfg.mx * cfg.nx));
    XP.push_back(device.alloc<P>(cfg.mx * cfg.nx));
    staging.emplace_back(cfg.mx * cfg.nx);
    staging_pred.emplace_back(cfg.mx * cfg.nx);
  }
  std::vector<dev::Device::StreamPtr> streams;
  streams.reserve(s);
  for (std::size_t r = 0; r < s; ++r) streams.push_back(device.create_stream());

  std::vector<dev::Event> a_ready(mb), b_ready(nb);
  std::vector<bool> a_up(mb, false), b_up(nb, false);

  auto upload_a = [&](std::size_t i, dev::Stream& st) {
    const std::size_t r0 = i * cfg.mx;
    const std::size_t nr = std::min(cfg.mx, m - r0);
    for (std::size_t row = 0; row < nr; ++row)
      device.memcpy_h2d(st, dA.data() + (r0 + row) * k,
                        A.data() + (r0 + row) * A.ld(), k * sizeof(T));
    stats.elems_h2d += nr * k;
    if (cfg.metrics)
      cfg.metrics->counter("oog.bytes_h2d").add(nr * k * sizeof(T));
    a_ready[i] = st.record();
    a_up[i] = true;
  };
  auto upload_b = [&](std::size_t j, dev::Stream& st) {
    const std::size_t c0 = j * cfg.nx;
    const std::size_t nc = std::min(cfg.nx, n - c0);
    // Values and pred ids share the column-chunked k x n device layout.
    for (std::size_t row = 0; row < k; ++row) {
      device.memcpy_h2d(st, dB.data() + row * n + c0,
                        B.data() + row * B.ld() + c0, nc * sizeof(T));
      device.memcpy_h2d(st, dPB.data() + row * n + c0,
                        predB.data() + row * predB.ld() + c0, nc * sizeof(P));
    }
    stats.elems_h2d += k * nc;
    if (cfg.metrics)
      cfg.metrics->counter("oog.bytes_h2d")
          .add(k * nc * (sizeof(T) + sizeof(P)));
    b_ready[j] = st.record();
    b_up[j] = true;
  };

  struct Pending {
    dev::Event done;
    std::size_t i, j, r;
    std::uint64_t seq;
  };
  std::deque<Pending> inflight;
  std::uint64_t chunk_seq = 0;
  const std::uint64_t dev_ctx =
      sched::kDeviceChannelCtx + static_cast<std::uint64_t>(cfg.trace_rank);

  auto host_update = [&](const Pending& p) {
    const std::size_t r0 = p.i * cfg.mx, c0 = p.j * cfg.nx;
    const std::size_t nr = std::min(cfg.mx, m - r0);
    const std::size_t nc = std::min(cfg.nx, n - c0);
    const bool timed = cfg.trace != nullptr || cfg.metrics != nullptr;
    const double t0 = timed ? sched::now_seconds() : 0.0;
    MatrixView<const T> xv(staging[p.r].data(), nr, nc, cfg.nx);
    MatrixView<const P> xpv(staging_pred[p.r].data(), nr, nc, cfg.nx);
    srgemm::ewise_add_with_pred<S>(xv, xpv, C.sub(r0, c0, nr, nc),
                                   predC.sub(r0, c0, nr, nc), cfg.gemm.pool);
    if (timed) {
      const double t1 = sched::now_seconds();
      if (cfg.trace)
        cfg.trace->record(sched::TraceEvent{
            cfg.trace_rank, "oogHost", 0, t0, t1,
            static_cast<std::int64_t>(nr * nc * (sizeof(T) + sizeof(P))),
            0.0});
      if (cfg.metrics)
        cfg.metrics->histogram("oog.host_update_seconds").observe(t1 - t0);
    }
  };
  auto retire = [&](const Pending& p) {
    const double t0 = cfg.trace ? sched::now_seconds() : 0.0;
    p.done.wait();
    if (cfg.trace) {
      sched::TraceEvent e{cfg.trace_rank, "oogWait", 0, t0,
                          sched::now_seconds(), 0, 0.0};
      e.ek = sched::EventKind::kRecv;
      e.peer = cfg.trace_rank;
      e.ctx = dev_ctx;
      e.seq = p.seq;
      cfg.trace->record(e);
    }
    host_update(p);
  };

  std::size_t next_stream = 0;
  for (std::size_t i = 0; i < mb; ++i) {
    for (std::size_t j = 0; j < nb; ++j) {
      const std::size_t r = next_stream;
      next_stream = (next_stream + 1) % s;
      dev::Stream& st = *streams[r];
      if (inflight.size() >= s) {
        const Pending p = inflight.front();
        inflight.pop_front();
        retire(p);
      }

      if (!a_up[i]) upload_a(i, st);
      if (!b_up[j]) upload_b(j, st);
      const dev::Event a_ev = a_ready[i];
      const dev::Event b_ev = b_ready[j];

      const std::size_t r0 = i * cfg.mx, c0 = j * cfg.nx;
      const std::size_t nr = std::min(cfg.mx, m - r0);
      const std::size_t nc = std::min(cfg.nx, n - c0);

      T* xr = X[r].data();
      P* xpr = XP[r].data();
      const T* a_panel = dA.data() + r0 * k;
      const T* b_panel = dB.data() + c0;
      const P* pb_panel = dPB.data() + c0;
      const srgemm::Config gemm = cfg.gemm;
      const std::size_t ldx = cfg.nx;
      device.launch(st, [=] {
        a_ev.wait();
        b_ev.wait();
        MatrixView<T> xv(xr, nr, nc, ldx);
        MatrixView<P> xpv(xpr, nr, nc, ldx);
        xv.fill(S::zero());
        xpv.fill(P{-1});  // never observed: zero() lanes cannot improve C
        srgemm::multiply_with_pred<S>(
            MatrixView<const T>(a_panel, nr, k, k),
            MatrixView<const T>(b_panel, k, nc, n), xv,
            MatrixView<const P>(pb_panel, k, nc, n), xpv, gemm);
      });
      device.memcpy_d2h(st, staging[r].data(), xr,
                        ((nr - 1) * ldx + nc) * sizeof(T));
      device.memcpy_d2h(st, staging_pred[r].data(), xpr,
                        ((nr - 1) * ldx + nc) * sizeof(P));
      stats.elems_d2h += nr * nc;

      inflight.push_back(Pending{st.record(), i, j, r, chunk_seq});
      if (cfg.trace) {
        const double t = sched::now_seconds();
        sched::TraceEvent e{
            cfg.trace_rank, "oogDev", 0, t, t,
            static_cast<std::int64_t>(nr * nc * (sizeof(T) + sizeof(P))),
            0.0};
        e.ek = sched::EventKind::kSend;
        e.peer = cfg.trace_rank;
        e.ctx = dev_ctx;
        e.seq = chunk_seq;
        cfg.trace->record(e);
      }
      ++chunk_seq;
      if (cfg.metrics) {
        cfg.metrics->counter("oog.bytes_d2h")
            .add(((nr - 1) * ldx + nc) * (sizeof(T) + sizeof(P)));
        const double depth = static_cast<double>(inflight.size());
        cfg.metrics->gauge("oog.inflight_depth").set(depth);
        cfg.metrics->gauge("oog.inflight_max").update_max(depth);
      }
      ++stats.blocks;
    }
  }

  while (!inflight.empty()) {
    const Pending p = inflight.front();
    inflight.pop_front();
    retire(p);
  }
  stats.blocks = mb * nb;
  return stats;
}

template <typename S>
OogStats oog_srgemm_device(dev::Device& device,
                           const typename S::value_type* dA, std::size_t lda,
                           const typename S::value_type* dB, std::size_t ldb,
                           std::size_t m, std::size_t n, std::size_t k,
                           MatrixView<typename S::value_type> C,
                           const OogConfig& cfg) {
  using T = typename S::value_type;
  PARFW_CHECK(C.rows() == m && C.cols() == n);
  PARFW_CHECK(cfg.mx > 0 && cfg.nx > 0 && cfg.num_streams > 0);
  OogStats stats;
  if (C.empty() || k == 0) return stats;

  const std::size_t mb = (m + cfg.mx - 1) / cfg.mx;
  const std::size_t nb = (n + cfg.nx - 1) / cfg.nx;
  const std::size_t s = cfg.num_streams;

  std::vector<dev::DeviceBuffer<T>> X;
  std::vector<AlignedBuffer<T>> staging;
  X.reserve(s);
  staging.reserve(s);
  for (std::size_t r = 0; r < s; ++r) {
    X.push_back(device.alloc<T>(cfg.mx * cfg.nx));
    staging.emplace_back(cfg.mx * cfg.nx);
  }
  std::vector<dev::Device::StreamPtr> streams;
  streams.reserve(s);
  for (std::size_t r = 0; r < s; ++r) streams.push_back(device.create_stream());

  struct Pending {
    dev::Event done;
    std::size_t i, j, r;
    std::uint64_t seq;
  };
  std::deque<Pending> inflight;
  std::uint64_t chunk_seq = 0;
  const std::uint64_t dev_ctx =
      sched::kDeviceChannelCtx + static_cast<std::uint64_t>(cfg.trace_rank);
  auto host_update = [&](const Pending& p) {
    const std::size_t r0 = p.i * cfg.mx, c0 = p.j * cfg.nx;
    const std::size_t nr = std::min(cfg.mx, m - r0);
    const std::size_t nc = std::min(cfg.nx, n - c0);
    const bool timed = cfg.trace != nullptr || cfg.metrics != nullptr;
    const double t0 = timed ? sched::now_seconds() : 0.0;
    MatrixView<const T> xv(staging[p.r].data(), nr, nc, cfg.nx);
    srgemm::ewise_add<S>(xv, C.sub(r0, c0, nr, nc), cfg.gemm.pool);
    if (timed) {
      const double t1 = sched::now_seconds();
      if (cfg.trace)
        cfg.trace->record(sched::TraceEvent{
            cfg.trace_rank, "oogHost", 0, t0, t1,
            static_cast<std::int64_t>(nr * nc * sizeof(T)), 0.0});
      if (cfg.metrics)
        cfg.metrics->histogram("oog.host_update_seconds").observe(t1 - t0);
    }
  };
  auto retire = [&](const Pending& p) {
    const double t0 = cfg.trace ? sched::now_seconds() : 0.0;
    p.done.wait();
    if (cfg.trace) {
      sched::TraceEvent e{cfg.trace_rank, "oogWait", 0, t0,
                          sched::now_seconds(), 0, 0.0};
      e.ek = sched::EventKind::kRecv;
      e.peer = cfg.trace_rank;
      e.ctx = dev_ctx;
      e.seq = p.seq;
      cfg.trace->record(e);
    }
    host_update(p);
  };

  std::size_t next_stream = 0;
  for (std::size_t i = 0; i < mb; ++i) {
    for (std::size_t j = 0; j < nb; ++j) {
      const std::size_t r = next_stream;
      next_stream = (next_stream + 1) % s;
      dev::Stream& st = *streams[r];
      if (inflight.size() >= s) {
        const Pending p = inflight.front();
        inflight.pop_front();
        retire(p);
      }
      const std::size_t r0 = i * cfg.mx, c0 = j * cfg.nx;
      const std::size_t nr = std::min(cfg.mx, m - r0);
      const std::size_t nc = std::min(cfg.nx, n - c0);
      T* xr = X[r].data();
      const T* a_panel = dA + r0 * lda;
      const T* b_panel = dB + c0;
      const srgemm::Config gemm = cfg.gemm;
      const std::size_t ldx = cfg.nx;
      device.launch(st, [=] {
        MatrixView<T> xv(xr, nr, nc, ldx);
        xv.fill(S::zero());
        srgemm::multiply_prepacked<S>(MatrixView<const T>(a_panel, nr, k, lda),
                                      MatrixView<const T>(b_panel, k, nc, ldb),
                                      xv, gemm);
      });
      device.memcpy_d2h(st, staging[r].data(), xr,
                        ((nr - 1) * ldx + nc) * sizeof(T));
      stats.elems_d2h += nr * nc;
      inflight.push_back(Pending{st.record(), i, j, r, chunk_seq});
      if (cfg.trace) {
        const double t = sched::now_seconds();
        sched::TraceEvent e{cfg.trace_rank, "oogDev", 0, t, t,
                            static_cast<std::int64_t>(nr * nc * sizeof(T)),
                            0.0};
        e.ek = sched::EventKind::kSend;
        e.peer = cfg.trace_rank;
        e.ctx = dev_ctx;
        e.seq = chunk_seq;
        cfg.trace->record(e);
      }
      ++chunk_seq;
      if (cfg.metrics) {
        cfg.metrics->counter("oog.bytes_d2h")
            .add(((nr - 1) * ldx + nc) * sizeof(T));
        const double depth = static_cast<double>(inflight.size());
        cfg.metrics->gauge("oog.inflight_depth").set(depth);
        cfg.metrics->gauge("oog.inflight_max").update_max(depth);
      }
    }
  }
  while (!inflight.empty()) {
    const Pending p = inflight.front();
    inflight.pop_front();
    retire(p);
  }
  stats.blocks = mb * nb;
  return stats;
}

}  // namespace parfw::offload
