// Serving-tier tests (DESIGN.md §4.12): tile cache policy (budget
// invariant, determinism, admission), manifest validation, and the
// central contract — served distances, statuses and paths bit-identical
// to the in-memory ApspResult oracle, across all distributed variants,
// both placements, crashed-and-resumed producers, the solve() front door
// (auto included), and the sharded mpisim serving tier.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <vector>

#include "core/apsp.hpp"
#include "core/floyd_warshall.hpp"
#include "core/query.hpp"
#include "dist/driver.hpp"
#include "dist/solve.hpp"
#include "graph/generators.hpp"
#include "mpisim/runtime.hpp"
#include "serve/manifest.hpp"
#include "serve/path_service.hpp"
#include "serve/publish.hpp"
#include "serve/sharded.hpp"
#include "serve/tile_cache.hpp"
#include "serve/workload.hpp"

namespace parfw {
namespace {

using S = MinPlus<float>;
using serve::CacheAdmission;
using serve::TileCache;
using serve::TileCacheConfig;
using serve::TileKey;
using serve::TileKind;

std::vector<std::uint8_t> tile_bytes(std::size_t size, std::uint8_t fill) {
  return std::vector<std::uint8_t>(size, fill);
}

// --- TileCache ---------------------------------------------------------------

TEST(TileCache, HitMissAccountingAndBudgetInvariant) {
  TileCache cache(TileCacheConfig{/*budget_bytes=*/1000});
  // Deterministic stream of 40 distinct 300-byte tiles, re-touched in a
  // cycle: budget holds 3 tiles, so the sweep thrashes. The invariant —
  // bytes_resident <= budget — must hold after EVERY operation.
  for (int round = 0; round < 5; ++round) {
    for (std::uint32_t i = 0; i < 40; ++i) {
      const TileKey key{TileKind::kValue, i, 0};
      if (cache.find(key) == nullptr) {
        auto bytes = tile_bytes(300, static_cast<std::uint8_t>(i));
        cache.insert(key, bytes);
      }
      ASSERT_LE(cache.stats().bytes_resident, cache.budget_bytes());
      ASSERT_LE(cache.stats().bytes_peak, cache.budget_bytes());
    }
  }
  const auto& s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, 200u);
  EXPECT_GT(s.evictions, 0u);
  EXPECT_EQ(s.bytes_resident, 900u);  // 3 resident 300-byte tiles
}

TEST(TileCache, DeterministicUnderFixedStream) {
  // Two caches fed the identical request stream must agree on every
  // statistic — the property the BENCH_serve hit-rate gate stands on.
  const TileCacheConfig cfg{/*budget_bytes=*/4096,
                            CacheAdmission::kSecondTouch,
                            /*ghost_capacity=*/16};
  TileCache a(cfg), b(cfg);
  Rng rng = Rng::split(42, 7);
  std::vector<TileKey> stream;
  for (int i = 0; i < 2000; ++i)
    stream.push_back(TileKey{TileKind::kValue,
                             static_cast<std::uint32_t>(rng.next_below(24)),
                             static_cast<std::uint32_t>(rng.next_below(24))});
  for (const TileKey& key : stream) {
    const bool ha = a.find(key) != nullptr;
    const bool hb = b.find(key) != nullptr;
    ASSERT_EQ(ha, hb);
    if (!ha) {
      auto ba = tile_bytes(256, 1), bb = tile_bytes(256, 1);
      ASSERT_EQ(a.insert(key, ba) != nullptr, b.insert(key, bb) != nullptr);
    }
  }
  EXPECT_EQ(a.stats().hits, b.stats().hits);
  EXPECT_EQ(a.stats().misses, b.stats().misses);
  EXPECT_EQ(a.stats().evictions, b.stats().evictions);
  EXPECT_EQ(a.stats().admitted, b.stats().admitted);
  EXPECT_EQ(a.stats().bypassed, b.stats().bypassed);
  EXPECT_EQ(a.stats().bytes_resident, b.stats().bytes_resident);
}

TEST(TileCache, SecondTouchAdmission) {
  TileCache cache(TileCacheConfig{/*budget_bytes=*/4096,
                                  CacheAdmission::kSecondTouch});
  const TileKey key{TileKind::kPred, 3, 4};
  auto bytes = tile_bytes(128, 9);
  EXPECT_EQ(cache.find(key), nullptr);
  EXPECT_EQ(cache.insert(key, bytes), nullptr);  // first touch: ghost only
  EXPECT_EQ(cache.stats().bypassed, 1u);
  EXPECT_EQ(cache.find(key), nullptr);
  const auto* stored = cache.insert(key, bytes);  // second touch: admitted
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->size(), 128u);
  EXPECT_NE(cache.find(key), nullptr);
  EXPECT_EQ(cache.stats().admitted, 1u);
}

TEST(TileCache, OversizedTileNeverAdmitted) {
  TileCache cache(TileCacheConfig{/*budget_bytes=*/100});
  const TileKey key{TileKind::kValue, 0, 0};
  auto bytes = tile_bytes(101, 1);
  EXPECT_EQ(cache.insert(key, bytes), nullptr);
  EXPECT_EQ(bytes.size(), 101u);  // caller keeps its buffer
  EXPECT_EQ(cache.stats().rejected, 1u);
  EXPECT_EQ(cache.stats().bytes_resident, 0u);
}

TEST(TileCache, ClockGivesSecondChanceToTouchedTiles) {
  // Budget = 2 tiles. Touch A so its reference bit is set; inserting C
  // must evict B (A gets its second chance), the defining CLOCK move.
  TileCache cache(TileCacheConfig{/*budget_bytes=*/200});
  const TileKey ka{TileKind::kValue, 0, 0}, kb{TileKind::kValue, 1, 0},
      kc{TileKind::kValue, 2, 0};
  auto bytes = tile_bytes(100, 1);
  cache.insert(ka, bytes);
  bytes = tile_bytes(100, 2);
  cache.insert(kb, bytes);
  ASSERT_NE(cache.find(ka), nullptr);  // sets A's reference bit
  bytes = tile_bytes(100, 3);
  cache.insert(kc, bytes);
  EXPECT_NE(cache.find(ka), nullptr) << "referenced tile was evicted";
  EXPECT_EQ(cache.find(kb), nullptr) << "unreferenced tile survived";
  EXPECT_NE(cache.find(kc), nullptr);
}

// --- Workload generator ------------------------------------------------------

TEST(Workload, DeterministicAndSkewed) {
  serve::WorkloadSpec spec;
  spec.n = 1000;
  spec.queries = 5000;
  spec.zipf_s = 1.2;
  spec.seed = 9;
  const QueryBatch a = serve::make_workload(spec);
  const QueryBatch b = serve::make_workload(spec);
  ASSERT_EQ(a.size(), 5000u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.pairs[i].src, b.pairs[i].src);
    EXPECT_EQ(a.pairs[i].dst, b.pairs[i].dst);
  }
  // Zipf(1.2): the top-10 ids must dominate; uniform would give ~1%.
  std::size_t top = 0;
  for (const PathQuery& q : a.pairs) top += q.src < 10 ? 1 : 0;
  EXPECT_GT(top, a.size() / 3);

  spec.zipf_s = 0.0;
  const QueryBatch u = serve::make_workload(spec);
  std::size_t utop = 0;
  for (const PathQuery& q : u.pairs) utop += q.src < 10 ? 1 : 0;
  EXPECT_LT(utop, a.size() / 20);
}

// --- ApspResult query API ----------------------------------------------------

TEST(QueryApi, StatusDistinguishesUnreachableFromNotTracked) {
  // 0 -> 1 -> 2, vertex 3 isolated.
  Graph g(4);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  ApspOptions opt;
  opt.track_paths = true;
  const auto tracked = apsp<MinPlus<double>>(g, opt);

  auto r = tracked.query(0, 2);
  EXPECT_EQ(r.status, PathStatus::kFound);
  EXPECT_EQ(r.distance, 5.0);
  EXPECT_EQ(r.path, (std::vector<std::int64_t>{0, 1, 2}));
  r = tracked.query(0, 3);
  EXPECT_EQ(r.status, PathStatus::kUnreachable);
  EXPECT_EQ(r.distance, value_traits<double>::infinity());
  EXPECT_TRUE(r.path.empty());
  r = tracked.query(3, 3);  // self-query is found even on an isolate
  EXPECT_EQ(r.status, PathStatus::kFound);
  EXPECT_EQ(r.path, (std::vector<std::int64_t>{3}));
  r = tracked.query(0, 2, /*want_path=*/false);
  EXPECT_EQ(r.status, PathStatus::kFound);
  EXPECT_TRUE(r.path.empty());

  const auto untracked = apsp<MinPlus<double>>(g, {});
  r = untracked.query(0, 2);
  EXPECT_EQ(r.status, PathStatus::kNotTracked);
  EXPECT_EQ(r.distance, 5.0);
  r = untracked.query(0, 3);
  EXPECT_EQ(r.status, PathStatus::kNotTracked) << "distance-only results "
                                                  "cannot claim unreachable";

  QueryBatch batch;
  batch.add(0, 2);
  batch.add_one_to_many(1, std::vector<std::int64_t>{0, 2, 3});
  const auto results = tracked.answer(batch);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[1].status, PathStatus::kUnreachable);  // 1 -> 0
  EXPECT_EQ(results[2].path, (std::vector<std::int64_t>{1, 2}));

  // The deprecated shim still answers (ambiguously) for old callers.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  EXPECT_EQ(tracked.path(0, 2), (std::vector<std::int64_t>{0, 1, 2}));
  EXPECT_TRUE(tracked.path(0, 3).empty());
  EXPECT_TRUE(untracked.path(0, 2).empty());
#pragma GCC diagnostic pop
}

// --- Publish + serve round trip ---------------------------------------------

/// In-memory oracle + a store holding its published manifest. The store
/// lives behind a unique_ptr because MemoryCheckpointStore owns a mutex
/// and is therefore immovable.
struct Published {
  ApspResult<float> oracle;
  std::unique_ptr<MemoryCheckpointStore> store_ptr =
      std::make_unique<MemoryCheckpointStore>();
  MemoryCheckpointStore& store() { return *store_ptr; }
};

Published publish_case(std::size_t n, std::size_t b, int pr, int pc,
                       bool paths, std::uint64_t seed = 11,
                       double density = 0.35) {
  Published p;
  const Graph g = gen::erdos_renyi(static_cast<vertex_t>(n), density, seed);
  ApspOptions opt;
  opt.block_size = b;
  opt.track_paths = paths;
  p.oracle = apsp<S>(g, opt);
  serve::publish_result(p.store(), p.oracle, b, pr, pc);
  return p;
}

void expect_all_pairs_match(serve::PathService<S>& service,
                            const ApspResult<float>& oracle, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      const auto want = oracle.query(static_cast<std::int64_t>(i),
                                     static_cast<std::int64_t>(j));
      const auto got = service.query(static_cast<std::int64_t>(i),
                                     static_cast<std::int64_t>(j));
      ASSERT_EQ(got.status, want.status) << i << " -> " << j;
      ASSERT_EQ(got.distance, want.distance) << i << " -> " << j;
      ASSERT_EQ(got.path, want.path) << i << " -> " << j;
    }
}

TEST(PathService, AllPairsBitIdenticalUnderTinyCache) {
  // n=60, b=12: paths cross tile boundaries constantly. The budget holds
  // just two tiles, so the walk evicts mid-path — correctness must not
  // depend on residency.
  Published p = publish_case(60, 12, 2, 2, /*paths=*/true);
  serve::ServeOptions sopt;
  sopt.cache_budget_bytes = 2 * 12 * 12 * sizeof(std::int64_t);
  serve::PathService<S> service(p.store(), sopt);
  expect_all_pairs_match(service, p.oracle, 60);
  EXPECT_GT(service.cache_stats().evictions, 0u);
  EXPECT_LE(service.cache_stats().bytes_peak, sopt.cache_budget_bytes);
}

TEST(PathService, ServiceCacheDeterministicAcrossInstances) {
  Published p = publish_case(48, 8, 1, 2, /*paths=*/true);
  serve::WorkloadSpec wspec;
  wspec.n = 48;
  wspec.queries = 600;
  wspec.zipf_s = 0.9;
  wspec.seed = 4;
  const QueryBatch batch = serve::make_workload(wspec);
  serve::ServeOptions sopt;
  sopt.cache_budget_bytes = 6 * 8 * 8 * sizeof(std::int64_t);
  sopt.admission = CacheAdmission::kSecondTouch;
  serve::PathService<S> s1(p.store(), sopt), s2(p.store(), sopt);
  const auto r1 = s1.answer(batch);
  const auto r2 = s2.answer(batch);
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i) ASSERT_EQ(r1[i].path, r2[i].path);
  EXPECT_EQ(s1.cache_stats().hits, s2.cache_stats().hits);
  EXPECT_EQ(s1.cache_stats().misses, s2.cache_stats().misses);
  EXPECT_EQ(s1.cache_stats().evictions, s2.cache_stats().evictions);
  EXPECT_LE(s1.cache_stats().bytes_peak, sopt.cache_budget_bytes);
}

TEST(PathService, ValuesOnlyManifestHardErrorsOnPathQueries) {
  Published p = publish_case(40, 8, 1, 1, /*paths=*/false);
  serve::PathService<S> service(p.store());
  // Distance-only batches are fine...
  auto r = service.query(0, 7, /*want_path=*/false);
  EXPECT_EQ(r.status, PathStatus::kNotTracked);
  EXPECT_EQ(r.distance, p.oracle.dist(0, 7));
  // ...but asking for a path must fail loudly, mirroring the PR 7 resume
  // rule for value-only blobs.
  try {
    service.query(0, 7, /*want_path=*/true);
    FAIL() << "expected check_error";
  } catch (const check_error& e) {
    EXPECT_NE(std::string(e.what()).find("values-only manifest"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("track_paths"), std::string::npos);
  }
}

TEST(ServeManifest, RejectsMidRunCheckpointStores) {
  // A checkpointed run that NEVER published: the store holds a mid-run
  // committed cut (k0 < nb). Serving it would answer half-closed
  // distances — open() must refuse.
  const std::size_t n = 64, b = 16;
  DenseEntryGen<float> gen(321, 0.8, 1.0f, 50.0f, /*integral=*/true);
  const auto grid = dist::GridSpec::row_major(2, 2);
  dist::DistFwOptions opt;
  opt.block_size = b;
  MemoryCheckpointStore store;
  opt.resilience.checkpoint_every = 2;
  opt.resilience.store = &store;
  (void)dist::run_parallel_fw<S>(n, gen, grid, 2, opt);
  ASSERT_TRUE(dist::read_commit(store).has_value());
  EXPECT_THROW(serve::ServeManifest::open(store), check_error);
  try {
    serve::ServeManifest::open(store);
  } catch (const check_error& e) {
    EXPECT_NE(std::string(e.what()).find("mid-run"), std::string::npos)
        << e.what();
  }
}

TEST(ServeManifest, RejectsEmptyStore) {
  MemoryCheckpointStore store;
  EXPECT_THROW(serve::ServeManifest::open(store), check_error);
}

// --- Served == oracle across the distributed matrix --------------------------

struct ServeCase {
  sched::Variant variant;
  bool tiled;
};

class ServedCrashResume : public ::testing::TestWithParam<ServeCase> {};

TEST_P(ServedCrashResume, ServedBitIdenticalToGatheredOracle) {
  // The manifest under test is written by a run that CRASHED, resumed
  // from a committed cut, finished, and then published in situ — the
  // full production lifecycle. Every served answer must match the
  // in-memory oracle built from the gathered matrices bit for bit.
  const ServeCase c = GetParam();
  const std::size_t n = 96, b = 16;
  DenseEntryGen<float> gen(6100 + static_cast<std::uint64_t>(c.variant),
                           0.85, 1.0f, 90.0f, /*integral=*/true);
  const auto grid = c.tiled ? dist::GridSpec::tiled(1, 2, 2, 1)
                            : dist::GridSpec::row_major(2, 2);
  const int rpn = c.tiled ? grid.qr() * grid.qc() : 2;

  dist::DistFwOptions opt;
  opt.variant = c.variant;
  opt.block_size = b;
  if (c.variant == sched::Variant::kOffload) {
    opt.oog.mx = opt.oog.nx = 16;
    opt.oog.num_streams = 2;
  }
  sched::ScheduleParams sp;
  sp.variant = c.variant;
  sp.nb = n / b;
  sp.b = b;
  sp.word_bytes = sizeof(float);
  sp.pred_word_bytes = sizeof(std::int64_t);
  sp.checkpoint_every = 2;
  const auto schedule = sched::build_schedule(grid, sp);

  MemoryCheckpointStore store;
  opt.resilience.checkpoint_every = 2;
  opt.resilience.store = &store;
  opt.publish_store = &store;  // aliasing the resilience store is legal
  opt.faults.seed = 17;
  opt.faults.crash_rank = 1;
  opt.faults.crash_at_op =
      static_cast<std::int64_t>(schedule.steps.size() * 6 / 10);

  const auto run = dist::run_parallel_fw<S>(n, gen, grid, rpn, opt,
                                            /*track_paths=*/true);
  ASSERT_GE(run.restarts, 1) << "the injected crash must have fired";

  ApspResult<float> oracle;
  oracle.dist = run.dist.clone();
  oracle.pred.emplace(run.pred.clone());

  serve::ServeOptions sopt;
  sopt.cache_budget_bytes = 24 * b * b * sizeof(std::int64_t);
  serve::PathService<S> service(store, sopt);
  EXPECT_EQ(service.manifest().world_size(), 4u);
  expect_all_pairs_match(service, oracle, n);
  EXPECT_LE(service.cache_stats().bytes_peak, sopt.cache_budget_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsBothPlacements, ServedCrashResume,
    ::testing::Values(ServeCase{sched::Variant::kBaseline, false},
                      ServeCase{sched::Variant::kPipelined, false},
                      ServeCase{sched::Variant::kAsync, false},
                      ServeCase{sched::Variant::kOffload, false},
                      ServeCase{sched::Variant::kBaseline, true},
                      ServeCase{sched::Variant::kPipelined, true},
                      ServeCase{sched::Variant::kAsync, true},
                      ServeCase{sched::Variant::kOffload, true}));

TEST(ServeFrontDoor, SolvePublishesThroughDistStrategyIncludingAuto) {
  // The solve() front door: DistStrategy::publish_store flows into the
  // driver; the served answers match the returned result — with an
  // explicit variant and with kAuto (tuner-resolved schedule).
  const Graph g = gen::erdos_renyi(96, 0.3, 23);
  for (const bool use_auto : {false, true}) {
    ApspOptions opt;
    opt.algorithm = ApspAlgorithm::kDistributed;
    opt.block_size = 16;
    opt.track_paths = true;
    opt.dist.grid_rows = opt.dist.grid_cols = 2;
    opt.dist.variant =
        use_auto ? sched::Variant::kAuto : sched::Variant::kPipelined;
    MemoryCheckpointStore store;
    opt.dist.publish_store = &store;
    const auto result = solve<MinPlus<double>>(g, opt);

    serve::PathService<MinPlus<double>> service(store);
    serve::WorkloadSpec wspec;
    wspec.n = 96;
    wspec.queries = 400;
    wspec.zipf_s = 1.1;
    wspec.seed = 31;
    const QueryBatch batch = serve::make_workload(wspec);
    const auto want = result.answer(batch);
    const auto got = service.answer(batch);
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i].status, want[i].status) << "auto=" << use_auto;
      ASSERT_EQ(got[i].distance, want[i].distance) << "auto=" << use_auto;
      ASSERT_EQ(got[i].path, want[i].path) << "auto=" << use_auto;
    }
  }
}

TEST(ServeFrontDoor, FileStoreServesPublishedManifest) {
  // End-to-end through FileCheckpointStore: exercises the positioned-read
  // get_ranges override against real files.
  const auto dir =
      std::filesystem::temp_directory_path() / "parfw_serve_file_store";
  std::filesystem::remove_all(dir);
  FileCheckpointStore store(dir);
  const Graph g = gen::erdos_renyi(48, 0.3, 5);
  ApspOptions opt;
  opt.block_size = 8;
  opt.track_paths = true;
  const auto oracle = apsp<S>(g, opt);
  serve::publish_result(store, oracle, 8, 2, 2);

  serve::ServeOptions sopt;
  sopt.cache_budget_bytes = 4 * 8 * 8 * sizeof(std::int64_t);
  serve::PathService<S> service(store, sopt);
  expect_all_pairs_match(service, oracle, 48);
  std::filesystem::remove_all(dir);
}

// --- Sharded serving ---------------------------------------------------------

TEST(ShardedServe, RoutedResultsMatchLocalService) {
  const std::size_t n = 96, b = 16;
  DenseEntryGen<float> gen(777, 0.85, 1.0f, 90.0f, /*integral=*/true);
  const auto grid = dist::GridSpec::row_major(2, 2);
  dist::DistFwOptions opt;
  opt.block_size = b;
  MemoryCheckpointStore store;
  opt.publish_store = &store;
  const auto run = dist::run_parallel_fw<S>(n, gen, grid, 2, opt,
                                            /*track_paths=*/true);
  ApspResult<float> oracle;
  oracle.dist = run.dist.clone();
  oracle.pred.emplace(run.pred.clone());

  serve::WorkloadSpec wspec;
  wspec.n = static_cast<std::int64_t>(n);
  wspec.queries = 500;
  wspec.zipf_s = 1.0;
  wspec.seed = 13;
  const QueryBatch batch = serve::make_workload(wspec);
  const auto want = oracle.answer(batch);

  std::vector<QueryResult<float>> got;
  mpi::Runtime::run(4, [&](mpi::Comm& world) {
    serve::ServeOptions sopt;
    sopt.cache_budget_bytes = 16 * b * b * sizeof(std::int64_t);
    auto results = serve::sharded_answer<S>(world, store, batch, sopt);
    if (world.rank() == 0) got = std::move(results);
  });
  ASSERT_EQ(got.size(), batch.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].status, want[i].status) << "query " << i;
    ASSERT_EQ(got[i].distance, want[i].distance) << "query " << i;
    ASSERT_EQ(got[i].path, want[i].path) << "query " << i;
  }
}

TEST(ShardedServe, WorldSizeMustMatchManifest) {
  Published p = publish_case(32, 8, 2, 2, /*paths=*/true);
  mpi::Runtime::run(2, [&](mpi::Comm& world) {
    QueryBatch batch;
    batch.add(0, 1);
    EXPECT_THROW(serve::sharded_answer<S>(world, p.store(), batch),
                 check_error);
  });
}

}  // namespace
}  // namespace parfw
