#include "devsim/device.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace parfw::dev {

Device::Device(const DeviceConfig& cfg) : cfg_(cfg) {}

Device::~Device() {
  // Streams are owned by callers; by the time the device dies they must be
  // gone. This mirrors CUDA's "destroy streams before the context" rule.
  std::lock_guard<std::mutex> lock(streams_mu_);
  PARFW_CHECK_MSG(streams_.empty(),
                  "device destroyed with " << streams_.size()
                                           << " live stream(s)");
}

void* Device::raw_alloc(std::size_t bytes, std::size_t align) {
  // Serialise the capacity check against concurrent allocators.
  std::size_t used = bytes_in_use_.load();
  for (;;) {
    if (used + bytes > cfg_.memory_bytes)
      throw DeviceOutOfMemory(bytes, cfg_.memory_bytes - used);
    if (bytes_in_use_.compare_exchange_weak(used, used + bytes)) break;
  }
  allocs_.fetch_add(1);
  std::uint64_t prev = peak_.load();
  while (prev < used + bytes &&
         !peak_.compare_exchange_weak(prev, used + bytes)) {
  }
  const std::size_t a = std::max<std::size_t>(align, 64);
  const std::size_t rounded = (bytes + a - 1) / a * a;
  void* p = std::aligned_alloc(a, rounded == 0 ? a : rounded);
  if (p == nullptr) {
    bytes_in_use_.fetch_sub(bytes);
    throw std::bad_alloc();
  }
  return p;
}

void Device::raw_free(void* p, std::size_t bytes) noexcept {
  std::free(p);
  bytes_in_use_.fetch_sub(bytes);
}

void Device::StreamDeleter::operator()(Stream* s) const {
  if (s == nullptr) return;
  s->synchronize();
  if (device != nullptr) {
    std::lock_guard<std::mutex> lock(device->streams_mu_);
    auto& v = device->streams_;
    v.erase(std::remove(v.begin(), v.end(), s), v.end());
  }
  delete s;
}

Device::StreamPtr Device::create_stream() {
  auto* s = new Stream();
  {
    std::lock_guard<std::mutex> lock(streams_mu_);
    streams_.push_back(s);
  }
  return StreamPtr(s, StreamDeleter{this});
}

void Device::throttle(const TransferModel& m, std::size_t bytes) {
  if (m.bytes_per_sec <= 0.0 && m.latency_sec <= 0.0) return;
  double secs = m.latency_sec;
  if (m.bytes_per_sec > 0.0)
    secs += static_cast<double>(bytes) / m.bytes_per_sec;
  if (secs > 0.0)
    std::this_thread::sleep_for(std::chrono::duration<double>(secs));
}

void Device::accumulate_seconds(std::atomic<double>& acc, double s) {
  double cur = acc.load(std::memory_order_relaxed);
  while (!acc.compare_exchange_weak(cur, cur + s, std::memory_order_relaxed)) {
  }
}

void Device::memcpy_h2d(Stream& s, void* dst_dev, const void* src_host,
                        std::size_t bytes) {
  bytes_h2d_.fetch_add(bytes);
  const TransferModel model = cfg_.h2d;
  auto* busy = &h2d_seconds_;
  s.enqueue([=] {
    const auto t0 = std::chrono::steady_clock::now();
    throttle(model, bytes);
    std::memcpy(dst_dev, src_host, bytes);
    accumulate_seconds(*busy, std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count());
  });
}

void Device::memcpy_d2h(Stream& s, void* dst_host, const void* src_dev,
                        std::size_t bytes) {
  bytes_d2h_.fetch_add(bytes);
  const TransferModel model = cfg_.d2h;
  auto* busy = &d2h_seconds_;
  s.enqueue([=] {
    const auto t0 = std::chrono::steady_clock::now();
    throttle(model, bytes);
    std::memcpy(dst_host, src_dev, bytes);
    accumulate_seconds(*busy, std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count());
  });
}

void Device::launch(Stream& s, std::function<void()> kernel) {
  kernels_.fetch_add(1);
  s.enqueue(std::move(kernel));
}

void Device::synchronize() {
  std::vector<Stream*> snapshot;
  {
    std::lock_guard<std::mutex> lock(streams_mu_);
    snapshot = streams_;
  }
  for (Stream* s : snapshot) s->synchronize();
}

DeviceCounters Device::counters() const {
  DeviceCounters c;
  c.bytes_h2d = bytes_h2d_.load();
  c.bytes_d2h = bytes_d2h_.load();
  c.kernels_launched = kernels_.load();
  c.allocs = allocs_.load();
  c.peak_bytes_in_use = peak_.load();
  c.h2d_seconds = h2d_seconds_.load();
  c.d2h_seconds = d2h_seconds_.load();
  return c;
}

void Device::reset_counters() {
  bytes_h2d_ = 0;
  bytes_d2h_ = 0;
  kernels_ = 0;
  allocs_ = 0;
  peak_ = bytes_in_use_.load();
  h2d_seconds_ = 0.0;
  d2h_seconds_ = 0.0;
}

}  // namespace parfw::dev
