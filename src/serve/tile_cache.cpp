#include "serve/tile_cache.hpp"

#include "util/check.hpp"

namespace parfw::serve {

TileCache::TileCache(TileCacheConfig cfg) : cfg_(cfg) {}

const std::vector<std::uint8_t>* TileCache::find(const TileKey& key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  frames_[it->second].referenced = true;
  return &frames_[it->second].bytes;
}

bool TileCache::ghost_second_touch(const TileKey& key) {
  if (ghost_.erase(key) > 0) {
    ++stats_.ghost_hits;  // second touch: promote
    return true;
  }
  ghost_.insert(key);
  ghost_fifo_.push_back(key);
  while (ghost_fifo_.size() > cfg_.ghost_capacity) {
    ghost_.erase(ghost_fifo_.front());
    ghost_fifo_.pop_front();
  }
  return false;
}

void TileCache::evict_one() {
  PARFW_CHECK_MSG(index_.size() > 0, "evict from an empty cache");
  // CLOCK sweep: clear reference bits until an unreferenced live frame
  // comes under the hand. Terminates within two sweeps — the first sweep
  // clears every bit.
  for (;;) {
    if (hand_ >= frames_.size()) hand_ = 0;
    Frame& f = frames_[hand_];
    if (!f.live) {
      ++hand_;
      continue;
    }
    if (f.referenced) {
      f.referenced = false;
      ++hand_;
      continue;
    }
    stats_.bytes_resident -= f.bytes.size();
    ++stats_.evictions;
    index_.erase(f.key);
    // An evicted key stays "warm" in the ghost window so an immediate
    // re-miss is re-admitted under kSecondTouch (the 2Q behaviour).
    if (cfg_.admission == CacheAdmission::kSecondTouch &&
        ghost_.insert(f.key).second) {
      ghost_fifo_.push_back(f.key);
      while (ghost_fifo_.size() > cfg_.ghost_capacity) {
        ghost_.erase(ghost_fifo_.front());
        ghost_fifo_.pop_front();
      }
    }
    f.bytes = {};
    f.live = false;
    free_frames_.push_back(hand_);
    ++hand_;
    return;
  }
}

const std::vector<std::uint8_t>* TileCache::insert(
    const TileKey& key, std::vector<std::uint8_t>& bytes) {
  if (auto it = index_.find(key); it != index_.end())
    return &frames_[it->second].bytes;  // already resident (double insert)
  const std::size_t size = bytes.size();
  if (size > cfg_.budget_bytes) {
    ++stats_.rejected;
    return nullptr;
  }
  if (cfg_.admission == CacheAdmission::kSecondTouch &&
      !ghost_second_touch(key)) {
    ++stats_.bypassed;
    return nullptr;
  }
  while (stats_.bytes_resident + size > cfg_.budget_bytes) evict_one();

  std::size_t idx;
  if (!free_frames_.empty()) {
    idx = free_frames_.back();
    free_frames_.pop_back();
  } else {
    idx = frames_.size();
    frames_.emplace_back();
  }
  Frame& f = frames_[idx];
  f.key = key;
  f.bytes = std::move(bytes);
  // The reference bit starts clear: only a subsequent find() hit earns the
  // second chance, so a freshly admitted tile can't outlive a re-used one.
  f.referenced = false;
  f.live = true;
  index_.emplace(key, idx);
  stats_.bytes_resident += size;
  if (stats_.bytes_resident > stats_.bytes_peak)
    stats_.bytes_peak = stats_.bytes_resident;
  ++stats_.admitted;
  PARFW_DCHECK(stats_.bytes_resident <= cfg_.budget_bytes);
  return &f.bytes;
}

}  // namespace parfw::serve
