#!/usr/bin/env python3
"""Diff two benchmark JSON files and fail on throughput regressions.

    bench_compare.py BASELINE.json FRESH.json [--tolerance 0.15]
                     [--metric NAME]

Both files use the google-benchmark JSON layout ({"benchmarks": [...]})
— emitted natively by the google-benchmark binaries
(--benchmark_out=...) and by the figure benches via PARFW_BENCH_JSON
(bench/fig_common.hpp BenchJson). Benchmarks are matched by "name";
the comparison runs over the name intersection and fails if it is
empty (renamed-away baselines must be re-recorded, not silently
skipped).

Per benchmark the compared metric is, in order of preference: the
--metric key when given; a throughput counter both sides carry
(GFLOP/s, PFLOP/s, bytes_per_second, items_per_second; higher is
better); else real_time (lower is better). A regression is a change
past --tolerance in the bad direction; improvements and in-band noise
pass. With --two-sided ANY drift past --tolerance fails, whichever
direction — the mode for attribution baselines (e.g. the cp/* blame
shares from trace_analyze --bench-json) where "more compute share"
is as much a behaviour change as less; a zero baseline then tolerates
an absolute drift of --tolerance instead of a ratio. With --ceiling X
the fresh metric is additionally gated against the ABSOLUTE bound X
regardless of the baseline value — the mode for budget gates ("ring
overhead stays under 3%" — monitor/ring_overhead), where drifting from
0.5% to 1% is fine but 3.1% is a failure even if the baseline already
said 3.1%. Exit status: 0 ok, 1 regression (or empty intersection),
2 usage/IO error.
"""

import argparse
import json
import sys

THROUGHPUT_KEYS = ("GFLOP/s", "PFLOP/s", "bytes_per_second",
                   "items_per_second")


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    rows = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if b.get("run_type", "iteration") != "iteration":
            continue
        rows[b["name"]] = b
    if not rows:
        sys.exit(f"bench_compare: no benchmarks in {path}")
    return rows


def pick_metric(base, fresh, forced):
    """Return (key, higher_is_better) usable on both rows."""
    if forced:
        if forced not in base or forced not in fresh:
            return None
        return forced, not forced.endswith("time")
    for k in THROUGHPUT_KEYS:
        if k in base and k in fresh:
            return k, True
    if "real_time" in base and "real_time" in fresh:
        return "real_time", False
    return None


def main():
    ap = argparse.ArgumentParser(
        description="compare benchmark JSONs, fail on regression")
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional regression (default 0.15)")
    ap.add_argument("--metric", default=None,
                    help="force this counter key instead of auto-detect")
    ap.add_argument("--two-sided", action="store_true",
                    help="fail on drift in EITHER direction (attribution "
                         "baselines, not throughput)")
    ap.add_argument("--ceiling", type=float, default=None,
                    help="absolute upper bound on the fresh metric value "
                         "(budget gates); applied on top of the relative "
                         "check")
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)
    names = sorted(set(base) & set(fresh))
    if not names:
        print("bench_compare: FAIL — no common benchmark names between "
              f"{args.baseline} and {args.fresh}", file=sys.stderr)
        return 1

    width = max(len(n) for n in names)
    regressions = []
    print(f"{'benchmark':<{width}}  {'metric':<16} {'baseline':>12} "
          f"{'fresh':>12} {'ratio':>7}  verdict")
    for name in names:
        picked = pick_metric(base[name], fresh[name], args.metric)
        if picked is None:
            print(f"{name:<{width}}  (metric missing on one side; skipped)")
            continue
        key, higher_better = picked
        b, f = float(base[name][key]), float(fresh[name][key])
        over_ceiling = args.ceiling is not None and f > args.ceiling
        if b == 0:
            if args.two_sided or over_ceiling:
                bad = over_ceiling or (args.two_sided
                                       and abs(f) > args.tolerance)
                verdict = "OVER CEILING" if over_ceiling else \
                    ("REGRESSION" if bad else "ok")
                if bad:
                    regressions.append(name)
                print(f"{name:<{width}}  {key:<16} {b:12.4g} {f:12.4g} "
                      f"{'n/a':>7}  {verdict}")
            else:
                print(f"{name:<{width}}  (baseline {key} is zero; skipped)")
            continue
        ratio = f / b
        if args.two_sided:
            bad = abs(ratio - 1) > args.tolerance
        else:
            bad = ratio < 1 - args.tolerance if higher_better \
                else ratio > 1 + args.tolerance
        verdict = "OVER CEILING" if over_ceiling else \
            ("REGRESSION" if bad else "ok")
        bad = bad or over_ceiling
        if bad:
            regressions.append(name)
        print(f"{name:<{width}}  {key:<16} {b:12.4g} {f:12.4g} "
              f"{ratio:7.3f}  {verdict}")

    print(f"\n{len(names)} compared, {len(regressions)} regressed "
          f"(tolerance {args.tolerance:.0%})")
    if regressions:
        print("bench_compare: FAIL —", ", ".join(regressions),
              file=sys.stderr)
        return 1
    print("bench_compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
