# Empty dependencies file for bench_srgemm_micro.
# This may be replaced when dependencies are built.
