// Lightweight runtime checking macros used across the library.
//
// PARFW_CHECK is enabled in all build types: it guards API contracts
// (dimension mismatches, invalid grids, out-of-memory on the simulated
// device) whose violation would otherwise corrupt results silently.
// PARFW_DCHECK compiles away in release builds and is used on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace parfw {

/// Exception thrown when a PARFW_CHECK fails. Deriving from
/// std::logic_error: a failed check is a programming/contract error,
/// not an environmental one.
class check_error : public std::logic_error {
 public:
  explicit check_error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_fail(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << "PARFW_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw check_error(os.str());
}
}  // namespace detail

}  // namespace parfw

#define PARFW_CHECK(expr)                                              \
  do {                                                                 \
    if (!(expr))                                                       \
      ::parfw::detail::check_fail(#expr, __FILE__, __LINE__, "");      \
  } while (0)

#define PARFW_CHECK_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream os_;                                          \
      os_ << msg;                                                      \
      ::parfw::detail::check_fail(#expr, __FILE__, __LINE__, os_.str()); \
    }                                                                  \
  } while (0)

#ifdef NDEBUG
#define PARFW_DCHECK(expr) ((void)0)
#else
#define PARFW_DCHECK(expr) PARFW_CHECK(expr)
#endif
