file(REMOVE_RECURSE
  "CMakeFiles/fault_tolerant.dir/fault_tolerant.cpp.o"
  "CMakeFiles/fault_tolerant.dir/fault_tolerant.cpp.o.d"
  "fault_tolerant"
  "fault_tolerant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tolerant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
