
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sssp/bellman_ford.cpp" "src/sssp/CMakeFiles/parfw_sssp.dir/bellman_ford.cpp.o" "gcc" "src/sssp/CMakeFiles/parfw_sssp.dir/bellman_ford.cpp.o.d"
  "/root/repo/src/sssp/delta_stepping.cpp" "src/sssp/CMakeFiles/parfw_sssp.dir/delta_stepping.cpp.o" "gcc" "src/sssp/CMakeFiles/parfw_sssp.dir/delta_stepping.cpp.o.d"
  "/root/repo/src/sssp/dijkstra.cpp" "src/sssp/CMakeFiles/parfw_sssp.dir/dijkstra.cpp.o" "gcc" "src/sssp/CMakeFiles/parfw_sssp.dir/dijkstra.cpp.o.d"
  "/root/repo/src/sssp/dijkstra_heap.cpp" "src/sssp/CMakeFiles/parfw_sssp.dir/dijkstra_heap.cpp.o" "gcc" "src/sssp/CMakeFiles/parfw_sssp.dir/dijkstra_heap.cpp.o.d"
  "/root/repo/src/sssp/johnson.cpp" "src/sssp/CMakeFiles/parfw_sssp.dir/johnson.cpp.o" "gcc" "src/sssp/CMakeFiles/parfw_sssp.dir/johnson.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/parfw_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/parfw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
