#include "mpisim/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <optional>
#include <thread>

#include "mpisim/communicator.hpp"
#include "util/check.hpp"

namespace parfw::mpi {

namespace {

/// Flow id of a (key, dst) stream — the coordinate fault rolls hash over.
std::uint64_t flow_of(const MatchKey& key, rank_t dst) {
  return MatchKeyHash{}(key) ^
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) *
          0x9e3779b97f4a7c15ull);
}

}  // namespace

NodeModel NodeModel::contiguous(int world_size, int ranks_per_node) {
  PARFW_CHECK(ranks_per_node > 0);
  NodeModel m;
  m.node_of.resize(static_cast<std::size_t>(world_size));
  for (int r = 0; r < world_size; ++r)
    m.node_of[static_cast<std::size_t>(r)] = r / ranks_per_node;
  return m;
}

World::World(int size, NodeModel node_model, sched::TraceSink* trace)
    : size_(size), node_model_(std::move(node_model)), trace_(trace) {
  PARFW_CHECK(size_ > 0);
  if (!node_model_.node_of.empty())
    PARFW_CHECK_MSG(node_model_.node_of.size() ==
                        static_cast<std::size_t>(size_),
                    "node model size mismatch");
  mailboxes_.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r)
    mailboxes_.push_back(std::make_unique<Mailbox>());

  int nodes = 0;
  for (int r = 0; r < size_; ++r) nodes = std::max(nodes, node_model_.node(r) + 1);
  traffic_.nic_bytes.assign(static_cast<std::size_t>(nodes), 0);
}

void World::set_metrics(telemetry::Registry* reg) {
  metrics_ = reg;
  if (reg == nullptr) {
    mh_ = MetricHandles{};
    return;
  }
  mh_.sends = &reg->counter("mpi.sends");
  mh_.send_bytes = &reg->counter("mpi.send_bytes");
  mh_.msg_bytes = &reg->histogram("mpi.msg_bytes");
  mh_.send_seconds = &reg->histogram("mpi.send_seconds");
  mh_.recv_wait_seconds = &reg->histogram("mpi.recv_wait_seconds");
  mh_.retry_msg_bytes = &reg->histogram("mpi.retry_msg_bytes");
}

void World::throw_aborted() const {
  // aborted_rank_/abort_reason_ are written before the release-store of
  // aborted_ and only read after its acquire-load — no lock needed.
  throw RankFailure(aborted_rank_, abort_reason_);
}

void World::count_fault(std::uint64_t TrafficStats::* counter,
                        const char* name, rank_t rank, std::int64_t bytes) {
  {
    std::lock_guard<std::mutex> lock(traffic_mu_);
    traffic_.*counter += 1;
  }
  if (trace_) {
    sched::TraceEvent e;
    e.rank = rank;
    e.name = name;
    e.t_begin = e.t_end = sched::now_seconds();
    e.bytes = bytes;
    trace_->record(e);
  }
}

void World::deliver(const MatchKey& key, rank_t dst, Message msg) {
  PARFW_DCHECK(dst >= 0 && dst < size_);
  const std::int64_t bytes = static_cast<std::int64_t>(msg.payload.size());
  // Send latency = time to stamp, account and enqueue the eager copy.
  telemetry::ScopedTimer send_timer(mh_.send_seconds);
  if (metrics_ != nullptr) {
    mh_.sends->inc();
    mh_.send_bytes->add(msg.payload.size());
    mh_.msg_bytes->observe(static_cast<double>(bytes));
  }
  {
    // Logical accounting: one message per send call, regardless of what
    // the fault plan does to it — keeps the totals DES-comparable.
    std::lock_guard<std::mutex> lock(traffic_mu_);
    ++traffic_.messages;
    traffic_.bytes_total += msg.payload.size();
    const int sn = node_model_.node(key.src);
    const int dn = node_model_.node(dst);
    if (sn != dn) {
      traffic_.bytes_internode += msg.payload.size();
      traffic_.nic_bytes[static_cast<std::size_t>(sn)] += msg.payload.size();
      traffic_.nic_bytes[static_cast<std::size_t>(dn)] += msg.payload.size();
    }
  }
  // The "msg" instant is the causal send anchor: capture its timestamp
  // BEFORE the enqueue so it never lands after the matching receive's
  // return, and record it after the flow sequence number is known (the
  // seq is what joins it to the "recv" event in src/causal/).
  const double t_send = trace_ ? sched::now_seconds() : 0.0;
  std::uint64_t seq = 0;
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  if (!faults_.message_faults()) {
    {
      std::lock_guard<std::mutex> lock(box.mu);
      seq = box.next_seq[key]++;
      msg.seq = seq;
      box.queues[key].push_back(std::move(msg));
    }
    box.cv.notify_all();
    if (trace_) {
      sched::TraceEvent e;
      e.rank = key.src;
      e.name = "msg";
      e.t_begin = e.t_end = t_send;
      e.bytes = bytes;
      e.ek = sched::EventKind::kSend;
      e.peer = dst;
      e.tag = static_cast<std::int32_t>(key.tag);
      e.ctx = key.context;
      e.seq = seq;
      trace_->record(e);
    }
    return;
  }

  // Fault path: stamp the flow sequence number, then roll drop / delay /
  // duplication independently. Every roll is a pure hash of
  // (seed, flow, seq, attempt) — deterministic across interleavings.
  const std::uint64_t flow = flow_of(key, dst);
  bool dropped = false, delayed = false, dup = false;
  {
    std::lock_guard<std::mutex> lock(box.mu);
    msg.seq = box.next_seq[key]++;
    seq = msg.seq;
    dropped = fault_roll(faults_.seed, flow, msg.seq, kFaultSaltDrop,
                         /*attempt=*/0) < faults_.drop_prob;
    if (dropped) {
      box.lost[key].push_back(std::move(msg));
    } else {
      delayed = fault_roll(faults_.seed, flow, msg.seq, kFaultSaltDelay, 0) <
                faults_.delay_prob;
      if (delayed)
        msg.not_before = std::chrono::steady_clock::now() +
                         std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double>(
                                 faults_.delay_seconds));
      dup = fault_roll(faults_.seed, flow, msg.seq, kFaultSaltDup, 0) <
            faults_.dup_prob;
      auto& q = box.queues[key];
      if (dup) q.push_back(msg);  // extra copy, same seq: discarded at recv
      q.push_back(std::move(msg));
    }
  }
  if (dropped) count_fault(&TrafficStats::drops_injected, "drop", key.src, bytes);
  if (delayed) count_fault(&TrafficStats::delays_injected, "delay", key.src, bytes);
  if (dup) count_fault(&TrafficStats::dups_injected, "dup", key.src, bytes);
  if (!dropped) box.cv.notify_all();
  // One logical send per deliver call, dropped or not: a parked message
  // that is later re-driven by the receiver's retransmission timer still
  // joins this anchor through its (unchanged) seq.
  if (trace_) {
    sched::TraceEvent e;
    e.rank = key.src;
    e.name = "msg";
    e.t_begin = e.t_end = t_send;
    e.bytes = bytes;
    e.ek = sched::EventKind::kSend;
    e.peer = dst;
    e.tag = static_cast<std::int32_t>(key.tag);
    e.ctx = key.context;
    e.seq = seq;
    trace_->record(e);
  }
}

void World::record_recv(const MatchKey& key, rank_t dst, const Message& msg,
                        double t_wait0) {
  if (!trace_) return;
  sched::TraceEvent e;
  e.rank = dst;
  e.name = "recv";
  e.t_begin = t_wait0;
  e.t_end = sched::now_seconds();
  e.bytes = static_cast<std::int64_t>(msg.payload.size());
  e.ek = sched::EventKind::kRecv;
  e.peer = key.src;
  e.tag = static_cast<std::int32_t>(key.tag);
  e.ctx = key.context;
  e.seq = msg.seq;
  e.attempt = msg.attempt;
  trace_->record(e);
}

Message World::await(const MatchKey& key, rank_t dst) {
  PARFW_DCHECK(dst >= 0 && dst < size_);
  // Receive-wait latency: entry to matched-message return (or unwind).
  telemetry::ScopedTimer recv_timer(mh_.recv_wait_seconds);
  const double t_wait0 = trace_ ? sched::now_seconds() : 0.0;
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  std::unique_lock<std::mutex> lock(box.mu);

  if (!faults_.message_faults()) {
    box.cv.wait(lock, [&] {
      if (aborted()) return true;
      auto it = box.queues.find(key);
      return it != box.queues.end() && !it->second.empty();
    });
    if (aborted()) throw_aborted();
    auto it = box.queues.find(key);
    Message msg = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) box.queues.erase(it);
    record_recv(key, dst, msg, t_wait0);
    return msg;
  }

  // Reliability envelope. Messages are consumed strictly in per-flow seq
  // order; a gap means the expected message was dropped (parked in
  // box.lost) or is still in flight. On timeout we play the sender's
  // retransmission timer: re-drive the oldest lost message of this flow,
  // with bounded exponential backoff and a per-message retry budget.
  using clock = std::chrono::steady_clock;
  const std::uint64_t flow = flow_of(key, dst);
  const double timeout_cap = send_timeout_ * 8.0;
  double timeout = send_timeout_;
  for (;;) {
    if (aborted()) throw_aborted();
    const std::uint64_t exp = box.expected[key];
    std::optional<clock::time_point> due;
    auto it = box.queues.find(key);
    if (it != box.queues.end()) {
      auto& q = it->second;
      auto qi = q.begin();
      while (qi != q.end()) {
        if (qi->seq < exp) {
          // Stale duplicate (dup injection, or a retransmission that
          // raced its original): discard.
          qi = q.erase(qi);
          count_fault(&TrafficStats::dup_discarded, "dup_discard", dst, 0);
          continue;
        }
        if (qi->seq == exp) {
          if (qi->not_before <= clock::now()) {
            Message msg = std::move(*qi);
            q.erase(qi);
            if (q.empty()) box.queues.erase(it);
            ++box.expected[key];
            record_recv(key, dst, msg, t_wait0);
            return msg;
          }
          due = qi->not_before;  // delayed: sleep until deliverable
          break;
        }
        ++qi;  // future seq — keep scanning (the gap resolves via retry)
      }
    }
    if (due) {
      box.cv.wait_until(lock, *due);
      continue;
    }
    if (box.cv.wait_for(lock, std::chrono::duration<double>(timeout)) ==
        std::cv_status::timeout) {
      auto lit = box.lost.find(key);
      if (lit != box.lost.end() && !lit->second.empty() &&
          lit->second.front().seq == box.expected[key]) {
        Message m = std::move(lit->second.front());
        lit->second.pop_front();
        if (lit->second.empty()) box.lost.erase(lit);
        m.attempt += 1;
        {
          std::lock_guard<std::mutex> tlock(traffic_mu_);
          ++traffic_.retries;
          traffic_.retry_bytes += m.payload.size();
        }
        if (metrics_ != nullptr)
          mh_.retry_msg_bytes->observe(static_cast<double>(m.payload.size()));
        if (trace_) {
          sched::TraceEvent e;
          e.rank = dst;
          e.name = "retry";
          e.t_begin = e.t_end = sched::now_seconds();
          e.bytes = static_cast<std::int64_t>(m.payload.size());
          trace_->record(e);
        }
        if (static_cast<int>(m.attempt) > max_retries_)
          throw RankFailure(
              dst, "retry budget exhausted (" + std::to_string(max_retries_) +
                       ") waiting on src " + std::to_string(key.src) +
                       " tag " + std::to_string(key.tag));
        // The retransmission itself rolls the drop die again (same seq,
        // new attempt); duplicates/delays are not re-injected.
        if (fault_roll(faults_.seed, flow, m.seq, kFaultSaltDrop,
                       m.attempt) < faults_.drop_prob) {
          count_fault(&TrafficStats::drops_injected, "drop", key.src,
                      static_cast<std::int64_t>(m.payload.size()));
          box.lost[key].push_front(std::move(m));
        } else {
          m.not_before = {};
          box.queues[key].push_back(std::move(m));
        }
      }
      timeout = std::min(timeout * 2.0, timeout_cap);  // bounded backoff
    }
  }
}

void World::abort(int failed_rank, const std::string& reason) {
  bool expected = false;
  if (!abort_claimed_.compare_exchange_strong(expected, true)) return;
  aborted_rank_ = failed_rank;
  abort_reason_ = reason;
  aborted_.store(true, std::memory_order_release);
  // Wake everyone. Locks are taken so no waiter misses the flag between
  // its predicate check and its wait.
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(group_mu_);
    group_cv_.notify_all();
  }
}

void World::add_checkpoint(std::uint64_t bytes, double seconds) {
  std::lock_guard<std::mutex> lock(traffic_mu_);
  ++traffic_.checkpoints;
  traffic_.checkpoint_bytes += bytes;
  traffic_.checkpoint_seconds += seconds;
}

void World::barrier() { group_barrier(/*context=*/0, size_); }

void World::group_barrier(std::uint64_t context, int group_size) {
  std::unique_lock<std::mutex> lock(group_mu_);
  if (aborted()) throw_aborted();
  GroupBarrier& gb = group_barriers_[context];
  const std::uint64_t my_gen = gb.gen;
  if (++gb.count == group_size) {
    gb.count = 0;
    ++gb.gen;
    group_cv_.notify_all();
    return;
  }
  group_cv_.wait(lock, [&] { return gb.gen != my_gen || aborted(); });
  if (gb.gen == my_gen) throw_aborted();  // woken by abort, not completion
}

TrafficStats World::traffic() const {
  std::lock_guard<std::mutex> lock(traffic_mu_);
  TrafficStats out = traffic_;
  out.max_nic_bytes = 0;
  for (std::uint64_t b : out.nic_bytes)
    out.max_nic_bytes = std::max(out.max_nic_bytes, b);
  return out;
}

TrafficStats Runtime::run(int world_size, const std::function<void(Comm&)>& fn,
                          const RuntimeOptions& opt) {
  World world(world_size, opt);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world_size));
  std::mutex err_mu;
  std::exception_ptr first_error;

  for (int r = 0; r < world_size; ++r) {
    threads.emplace_back([&world, &fn, r, &err_mu, &first_error] {
      try {
        Comm comm(&world, r);
        fn(comm);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        // One rank down must not deadlock the rest: kill the world so
        // every blocked peer throws RankFailure and unwinds.
        world.abort(r, "rank " + std::to_string(r) + " failed");
      }
    });
  }
  for (auto& t : threads) t.join();
  if (opt.stats_out) *opt.stats_out = world.traffic();
  if (first_error) std::rethrow_exception(first_error);
  return world.traffic();
}

void TrafficStats::merge(const TrafficStats& o) {
  messages += o.messages;
  bytes_total += o.bytes_total;
  bytes_internode += o.bytes_internode;
  if (nic_bytes.size() < o.nic_bytes.size())
    nic_bytes.resize(o.nic_bytes.size(), 0);
  for (std::size_t i = 0; i < o.nic_bytes.size(); ++i)
    nic_bytes[i] += o.nic_bytes[i];
  max_nic_bytes = 0;
  for (const auto b : nic_bytes) max_nic_bytes = std::max(max_nic_bytes, b);
  drops_injected += o.drops_injected;
  dups_injected += o.dups_injected;
  delays_injected += o.delays_injected;
  retries += o.retries;
  dup_discarded += o.dup_discarded;
  retry_bytes += o.retry_bytes;
  checkpoints += o.checkpoints;
  checkpoint_bytes += o.checkpoint_bytes;
  checkpoint_seconds += o.checkpoint_seconds;
}

}  // namespace parfw::mpi
