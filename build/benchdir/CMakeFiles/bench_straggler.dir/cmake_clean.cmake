file(REMOVE_RECURSE
  "../bench/bench_straggler"
  "../bench/bench_straggler.pdb"
  "CMakeFiles/bench_straggler.dir/bench_straggler.cpp.o"
  "CMakeFiles/bench_straggler.dir/bench_straggler.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_straggler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
