#include "telemetry/reconcile.hpp"

#include <cmath>
#include <cstdio>
#include <set>

#include "sched/ir.hpp"
#include "util/table.hpp"

namespace parfw::telemetry {

namespace {

/// Schedule-phase classification: op names from the IR are phases
/// (compute or comm); anything else ("msg", "retry", "oogHost", raw
/// "send"/"recv"/"comp") is auxiliary and excluded from share totals and
/// exact checks.
enum class PhaseClass { kCompute, kComm, kAux };

PhaseClass classify(const std::string& name) {
  using sched::OpKind;
  for (int i = 0; i <= static_cast<int>(OpKind::kCheckpoint); ++i) {
    const auto kind = static_cast<OpKind>(i);
    if (name == sched::op_name(kind))
      return sched::is_comm(kind) ? PhaseClass::kComm : PhaseClass::kCompute;
  }
  return PhaseClass::kAux;
}

std::string pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * v);
  return buf;
}

}  // namespace

std::vector<std::string> ReconcileReport::exact_mismatches() const {
  std::vector<std::string> out;
  for (const PhaseDelta& p : phases) {
    if (!p.compute) continue;
    if (p.measured.count != p.modelled.count ||
        p.measured.flops != p.modelled.flops)
      out.push_back(p.phase);
  }
  return out;
}

std::vector<std::string> ReconcileReport::out_of_band() const {
  std::vector<std::string> out;
  for (const PhaseDelta& p : phases)
    if (std::abs(p.measured_share - p.modelled_share) > share_band)
      out.push_back(p.phase);
  return out;
}

std::string ReconcileReport::table() const {
  Table t({"phase", "n meas", "n model", "s meas", "s model", "share meas",
           "share model", "flag"});
  for (const PhaseDelta& p : phases) {
    std::string flag;
    if (p.compute && (p.measured.count != p.modelled.count ||
                      p.measured.flops != p.modelled.flops))
      flag = "EXACT-MISMATCH";
    else if (std::abs(p.measured_share - p.modelled_share) > share_band)
      flag = ">band";
    t.add_row({p.phase, std::to_string(p.measured.count),
               std::to_string(p.modelled.count), Table::num(p.measured.seconds),
               Table::num(p.modelled.seconds), pct(p.measured_share),
               pct(p.modelled_share), flag});
  }
  std::string out = t.str();
  char line[160];
  std::snprintf(line, sizeof(line),
                "\nwire bytes: measured %lld, modelled %lld -> %s "
                "(band: phase-share delta <= %.0f%%)\n",
                static_cast<long long>(measured_wire_bytes),
                static_cast<long long>(modelled_wire_bytes),
                bytes_match() ? "EXACT MATCH" : "MISMATCH",
                100.0 * share_band);
  out += line;
  return out;
}

ReconcileReport reconcile(
    const std::map<std::string, sched::StatsTraceSink::OpStats>& measured,
    const std::map<std::string, sched::StatsTraceSink::OpStats>& modelled,
    std::int64_t measured_wire_bytes, std::int64_t modelled_wire_bytes,
    double share_band) {
  ReconcileReport rep;
  rep.measured_wire_bytes = measured_wire_bytes;
  rep.modelled_wire_bytes = modelled_wire_bytes;
  rep.share_band = share_band;

  std::set<std::string> names;
  for (const auto& [n, s] : measured) names.insert(n);
  for (const auto& [n, s] : modelled) names.insert(n);

  double meas_total = 0.0, model_total = 0.0;
  for (const std::string& n : names) {
    if (classify(n) == PhaseClass::kAux) continue;
    auto mi = measured.find(n);
    auto di = modelled.find(n);
    if (mi != measured.end()) meas_total += mi->second.seconds;
    if (di != modelled.end()) model_total += di->second.seconds;
  }

  for (const std::string& n : names) {
    const PhaseClass cls = classify(n);
    if (cls == PhaseClass::kAux) continue;
    PhaseDelta p;
    p.phase = n;
    p.compute = cls == PhaseClass::kCompute;
    if (auto it = measured.find(n); it != measured.end()) p.measured = it->second;
    if (auto it = modelled.find(n); it != modelled.end()) p.modelled = it->second;
    p.measured_share = meas_total > 0.0 ? p.measured.seconds / meas_total : 0.0;
    p.modelled_share = model_total > 0.0 ? p.modelled.seconds / model_total : 0.0;
    rep.phases.push_back(std::move(p));
  }
  return rep;
}

}  // namespace parfw::telemetry
