// Schedule generators — the ONLY place a variant's control flow is
// written. dist::parallel_fw and perf::build_fw_program both interpret
// the Schedule these emit; see ir.hpp for the contract.
#include "sched/ir.hpp"

#include <algorithm>

namespace parfw::sched {

namespace {

/// Emission context: geometry plus the per-phase helpers shared by the
/// baseline and pipelined schedules.
struct Gen {
  const dist::GridSpec& grid;
  const ScheduleParams& p;
  Schedule& s;
  int pr, pc;
  std::size_t nb;
  double b, word, predw;

  double owned(int mine, int procs) const {
    const std::size_t ms = static_cast<std::size_t>(mine);
    return ms >= nb ? 0.0
                    : static_cast<double>((nb - ms - 1) /
                                              static_cast<std::size_t>(procs) +
                                          1);
  }
  std::int64_t rowp_bytes(int c) const {
    return static_cast<std::int64_t>(b * owned(c, pc) * b * word);
  }
  std::int64_t rowp_pred_bytes(int c) const {
    return static_cast<std::int64_t>(b * owned(c, pc) * b * predw);
  }
  std::int64_t colp_bytes(int r) const {
    return static_cast<std::int64_t>(owned(r, pr) * b * b * word);
  }
  std::int64_t diag_bytes() const {
    return static_cast<std::int64_t>(b * b * word);
  }
  std::int64_t diag_pred_bytes() const {
    return static_cast<std::int64_t>(b * b * predw);
  }
  bool paths() const { return p.pred_word_bytes > 0; }

  void comp(int rank, OpKind kind, std::size_t k, double flops) {
    Op op;
    op.kind = kind;
    op.k = static_cast<std::uint32_t>(k);
    op.flops = flops;
    op.offload = kind == OpKind::kOuterUpdate && p.variant == Variant::kOffload;
    s.steps.push_back({rank, op});
  }
  void comm(int rank, OpKind kind, std::size_t k, CollKind coll, int phase,
            int root, std::int64_t bytes, Payload payload = Payload::kValue) {
    Op op;
    op.kind = kind;
    op.k = static_cast<std::uint32_t>(k);
    op.coll = coll;
    op.payload = payload;
    op.tag = tag_of(k, phase);
    op.root = root;
    op.bytes = bytes;
    s.steps.push_back({rank, op});
  }

  CollKind panel_coll() const {
    return p.variant == Variant::kAsync ? CollKind::kRing : CollKind::kTree;
  }

  // DiagUpdate(k) on the owner, then DiagBcast(k) across the owner's
  // process row and down its process column (always tree: latency-bound).
  // With paths on, each diag broadcast gets a kPred companion carrying the
  // pivot block's predecessor tile: the column panel's pred rule reads
  // akk_pred, so the pred diag must reach both scopes.
  void diag_phase(std::size_t k) {
    const int krow = static_cast<int>(k % static_cast<std::size_t>(pr));
    const int kcol = static_cast<int>(k % static_cast<std::size_t>(pc));
    comp(grid.world_rank({krow, kcol}), OpKind::kDiagUpdate, k, p.diag_flops);
    for (int c = 0; c < pc; ++c)
      comm(grid.world_rank({krow, c}), OpKind::kDiagBcastRow, k, CollKind::kTree,
           kTagDiagRow, kcol, diag_bytes());
    if (paths())
      for (int c = 0; c < pc; ++c)
        comm(grid.world_rank({krow, c}), OpKind::kDiagBcastRow, k,
             CollKind::kTree, kTagDiagPredRow, kcol, diag_pred_bytes(),
             Payload::kPred);
    for (int r = 0; r < pr; ++r)
      comm(grid.world_rank({r, kcol}), OpKind::kDiagBcastCol, k, CollKind::kTree,
           kTagDiagCol, krow, diag_bytes());
    if (paths())
      for (int r = 0; r < pr; ++r)
        comm(grid.world_rank({r, kcol}), OpKind::kDiagBcastCol, k,
             CollKind::kTree, kTagDiagPredCol, krow, diag_pred_bytes(),
             Payload::kPred);
  }

  // PanelUpdate(k): the k-th process row closes its row strip, the k-th
  // process column its column strip.
  void panel_update_phase(std::size_t k) {
    const int krow = static_cast<int>(k % static_cast<std::size_t>(pr));
    const int kcol = static_cast<int>(k % static_cast<std::size_t>(pc));
    for (int c = 0; c < pc; ++c)
      comp(grid.world_rank({krow, c}), OpKind::kPanelUpdateRow, k,
           2.0 * b * b * owned(c, pc) * b);
    for (int r = 0; r < pr; ++r)
      comp(grid.world_rank({r, kcol}), OpKind::kPanelUpdateCol, k,
           2.0 * owned(r, pr) * b * b * b);
  }

  // PanelBcast(k) member steps. `roots` / `recvs` select which side of
  // the collective to emit (the pipelined schedule emits the root side
  // before the bulk OuterUpdate and the receive side after it; pass both
  // true for the bulk-synchronous placement of the whole collective).
  void row_panel_bcast(std::size_t k, bool roots, bool recvs) {
    const int krow = static_cast<int>(k % static_cast<std::size_t>(pr));
    for (int c = 0; c < pc; ++c)  // one collective per process column
      for (int r = 0; r < pr; ++r) {
        if (!(r == krow ? roots : recvs)) continue;
        comm(grid.world_rank({r, c}), OpKind::kRowPanelBcast, k, panel_coll(),
             kTagRowPanel, krow, rowp_bytes(c));
        // Paths: the pivot row panel's pred tile travels with it (the pred
        // rule pred(i,j) ← pred(t,j) reads the k-th block row's preds on
        // every rank) — the doubled row-panel volume of paths mode.
        if (paths())
          comm(grid.world_rank({r, c}), OpKind::kRowPanelBcast, k,
               panel_coll(), kTagRowPanelPred, krow, rowp_pred_bytes(c),
               Payload::kPred);
      }
  }
  void col_panel_bcast(std::size_t k, bool roots, bool recvs) {
    const int kcol = static_cast<int>(k % static_cast<std::size_t>(pc));
    for (int r = 0; r < pr; ++r)  // one collective per process row
      for (int c = 0; c < pc; ++c) {
        if (!(c == kcol ? roots : recvs)) continue;
        comm(grid.world_rank({r, c}), OpKind::kColPanelBcast, k, panel_coll(),
             kTagColPanel, kcol, colp_bytes(r));
      }
  }

  void outer_phase(std::size_t k) {
    for (int r = 0; r < pr; ++r)
      for (int c = 0; c < pc; ++c)
        comp(grid.world_rank({r, c}), OpKind::kOuterUpdate, k,
             2.0 * owned(r, pr) * b * owned(c, pc) * b * b);
  }

  // Coordinated checkpoint cut before iteration k: one op per rank, at a
  // point in the global order where every collective of iterations < k is
  // complete, so the tiles alone (plus k) define the remaining work. The
  // data interpreter binds this to barrier + snapshot + barrier; the DES
  // sees a zero-flop compute op. op.bytes records the rank's local tile
  // footprint (snapshot size metadata, not wire bytes).
  void checkpoint_phase(std::size_t k) {
    for (int r = 0; r < pr; ++r)
      for (int c = 0; c < pc; ++c) {
        Op op;
        op.kind = OpKind::kCheckpoint;
        op.k = static_cast<std::uint32_t>(k);
        // Snapshot footprint: the value tiles plus, in paths mode, the
        // predecessor tiles (checkpoint-v2 persists both).
        op.bytes = static_cast<std::int64_t>(owned(r, pr) * b * owned(c, pc) *
                                             b * (word + predw));
        s.steps.push_back({grid.world_rank({r, c}), op});
      }
  }
  bool want_checkpoint(std::size_t k) const {
    return p.checkpoint_every > 0 && k > p.start_k &&
           k % p.checkpoint_every == 0;
  }

  // Look-ahead: OuterUpdate(k) restricted to the (k+1) panel strips, on
  // the ranks that own them. op.k carries k (the update iteration); the
  // strip location is k+1, derived by the interpreter.
  void lookahead_phase(std::size_t k, std::size_t k1) {
    const int k1row = static_cast<int>(k1 % static_cast<std::size_t>(pr));
    const int k1col = static_cast<int>(k1 % static_cast<std::size_t>(pc));
    for (int c = 0; c < pc; ++c)
      comp(grid.world_rank({k1row, c}), OpKind::kLookaheadRow, k,
           2.0 * b * owned(c, pc) * b * b);
    for (int r = 0; r < pr; ++r)
      comp(grid.world_rank({r, k1col}), OpKind::kLookaheadCol, k,
           2.0 * owned(r, pr) * b * b * b);
  }
};

}  // namespace

Schedule build_schedule(const dist::GridSpec& grid, const ScheduleParams& p) {
  const int pr = grid.rows(), pc = grid.cols();
  PARFW_CHECK_MSG(p.variant != Variant::kAuto,
                  "Variant::kAuto is a front-door request, not a schedule; "
                  "parfw::solve resolves it through the tuner first");
  PARFW_CHECK(p.nb > 0 && p.b > 0 && p.word_bytes > 0);
  PARFW_CHECK_MSG(p.nb >= static_cast<std::size_t>(pr) &&
                      p.nb >= static_cast<std::size_t>(pc),
                  "need at least one block per process row/column");
  PARFW_CHECK_MSG(p.start_k <= p.nb, "resume point beyond the last iteration");

  Schedule s;
  s.variant = p.variant;
  s.nb = p.nb;
  s.b = p.b;
  s.pr = pr;
  s.pc = pc;

  Gen g{grid,
        p,
        s,
        pr,
        pc,
        p.nb,
        static_cast<double>(p.b),
        static_cast<double>(p.word_bytes),
        static_cast<double>(p.pred_word_bytes)};

  const bool pipelined =
      p.variant == Variant::kPipelined || p.variant == Variant::kAsync;

  if (!pipelined) {
    // Algorithm 3 (bulk synchronous); kOffload differs only in how the
    // interpreter binds kOuterUpdate (op.offload). Resuming from start_k
    // needs no prologue: each iteration regenerates its own panels.
    for (std::size_t k = p.start_k; k < p.nb; ++k) {
      if (g.want_checkpoint(k)) g.checkpoint_phase(k);
      g.diag_phase(k);
      g.panel_update_phase(k);
      g.row_panel_bcast(k, /*roots=*/true, /*recvs=*/true);
      g.col_panel_bcast(k, /*roots=*/true, /*recvs=*/true);
      g.outer_phase(k);
    }
    return s;
  }
  if (p.start_k == p.nb) return s;  // resumed past the end: nothing left

  // Algorithm 4 (pipelined / async). Prologue establishes the start_k
  // panels (start_k = 0 for a fresh run; a resume re-derives the panel
  // buffers from the checkpointed tiles — bit-identical, see
  // ScheduleParams::start_k); thereafter iteration k+1's Diag/Panel
  // phases and the root side of PanelBcast(k+1) run before the bulk
  // OuterUpdate(k), and the receive side after it.
  g.diag_phase(p.start_k);
  g.panel_update_phase(p.start_k);
  g.row_panel_bcast(p.start_k, true, true);
  g.col_panel_bcast(p.start_k, true, true);
  for (std::size_t k = p.start_k; k < p.nb; ++k) {
    // Cut at the top of body k: PanelBcast(k) recv sides closed in body
    // k-1, so the tiles already carry PanelUpdate(k) — exactly the state
    // the resume prologue(k) re-derives.
    if (g.want_checkpoint(k)) g.checkpoint_phase(k);
    const std::size_t k1 = k + 1;
    if (k1 < p.nb) {
      g.lookahead_phase(k, k1);
      g.diag_phase(k1);
      g.panel_update_phase(k1);
      g.row_panel_bcast(k1, /*roots=*/true, /*recvs=*/false);
      g.col_panel_bcast(k1, /*roots=*/true, /*recvs=*/false);
      g.outer_phase(k);
      g.row_panel_bcast(k1, /*roots=*/false, /*recvs=*/true);
      g.col_panel_bcast(k1, /*roots=*/false, /*recvs=*/true);
    } else {
      g.outer_phase(k);
    }
  }
  return s;
}

ScheduleTotals totals(const Schedule& s) {
  ScheduleTotals t;
  for (const Step& st : s.steps) {
    if (is_comp(st.op.kind)) {
      ++t.comp_ops;
      t.flops += st.op.flops;
    } else {
      ++t.comm_ops;
      t.payload_bytes += st.op.bytes;
    }
  }
  return t;
}

}  // namespace parfw::sched
