# Empty compiler generated dependencies file for test_srgemm.
# This may be replaced when dependencies are built.
