// Distributed Floyd-Warshall with predecessor tracking — the paper's §7
// "distributed shortest path generation" future-work item.
//
// Every distance block carries a predecessor block: pred(i,j) = vertex
// preceding j on the current best i→j path. The FW update rule
//     dist(i,j) improves via t  ⇒  pred(i,j) ← pred(t, j)
// only ever reads predecessor data from the k-th BLOCK ROW, so the
// communication pattern is the value pattern plus:
//   * DiagBcast additionally carries the diagonal block's predecessors;
//   * the row PanelBcast additionally carries the row panel's
//     predecessors;
//   * the column panel needs no extra traffic (its predecessor updates
//     read the diagonal block's predecessors, already broadcast).
// Volume overhead: one int64 per float on the row panels — the paper's
// panels double in width, the outer product traffic is unchanged.
//
// Uses the bulk-synchronous (Algorithm 3) schedule; the pipelined
// variants compose the same way but are not needed for correctness
// demonstrations.
#pragma once

#include <cstdint>

#include "core/blocked_fw_paths.hpp"
#include "dist/block_cyclic.hpp"
#include "dist/parallel_fw.hpp"

namespace parfw::dist {

/// Distributed FW with path tracking. `a` holds this rank's distance
/// blocks; `pred` (same layout) must be initialised so that
/// pred(i,j) = i for finite off-diagonal entries and the diagonal,
/// -1 otherwise (see init_predecessors / BlockCyclicMatrix::fill-style
/// helpers in the caller). On return both hold the closed solution.
template <typename S>
void parallel_fw_paths(mpi::Comm& world,
                       BlockCyclicMatrix<typename S::value_type>& a,
                       BlockCyclicMatrix<std::int64_t>& pred,
                       [[maybe_unused]] const DistFwOptions& opt = {}) {
  static_assert(is_idempotent<S>(), "distributed FW requires idempotent ⊕");
  using T = typename S::value_type;
  const GridSpec& grid = a.grid();
  PARFW_CHECK(world.size() == grid.size());
  const GridCoord me = grid.coord_of(world.rank());
  const std::size_t b = a.block_size();
  const std::size_t nb = a.num_blocks();
  const int pr = grid.rows(), pc = grid.cols();
  PARFW_CHECK(pred.block_size() == b && pred.num_blocks() == nb);
  const std::size_t nlr = a.local_block_rows(), nlc = a.local_block_cols();
  auto local = a.local().view();
  auto plocal = pred.local().view();

  RowColComms comms = make_row_col_comms(world, grid);
  mpi::Comm& row_comm = comms.row;
  mpi::Comm& col_comm = comms.col;

  Matrix<T> akk(b, b);
  Matrix<std::int64_t> akk_pred(b, b);
  Matrix<T> rowp(b, nlc * b);
  Matrix<std::int64_t> rowp_pred(b, nlc * b);
  Matrix<T> colp(nlr * b, b);

  auto bytes_of = [](auto& m_) {
    using MT = std::remove_reference_t<decltype(*m_.data())>;
    return std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(m_.data()),
                                   m_.size() * sizeof(MT));
  };

  for (std::size_t k = 0; k < nb; ++k) {
    const int krow = static_cast<int>(k) % pr, kcol = static_cast<int>(k) % pc;

    // --- DiagUpdate with paths (classic FW on the block) ----------------
    if (me.row == krow && me.col == kcol) {
      auto dk = a.block(a.local_row(k), a.local_col(k));
      auto pk = pred.local().sub(pred.local_row(k) * b, pred.local_col(k) * b,
                                 b, b);
      for (std::size_t t = 0; t < b; ++t)
        for (std::size_t i = 0; i < b; ++i) {
          const T dit = dk(i, t);
          if (dit == S::zero()) continue;
          for (std::size_t j = 0; j < b; ++j) {
            const T cand = S::mul(dit, dk(t, j));
            if (S::less_add(cand, dk(i, j))) {
              dk(i, j) = cand;
              pk(i, j) = pk(t, j);
            }
          }
        }
      akk.view().copy_from(dk);
      akk_pred.view().copy_from(MatrixView<const std::int64_t>(pk));
    }

    // --- DiagBcast: values + predecessors --------------------------------
    if (me.row == krow) {
      row_comm.bcast_bytes(bytes_of(akk), kcol, sched::tag_of(k, sched::kTagDiagRow));
      row_comm.bcast_bytes(bytes_of(akk_pred), kcol,
                           sched::tag_of(k, sched::kTagDiagPredRow));
    }
    if (me.col == kcol) {
      col_comm.bcast_bytes(bytes_of(akk), krow, sched::tag_of(k, sched::kTagDiagCol));
      col_comm.bcast_bytes(bytes_of(akk_pred), krow,
                           sched::tag_of(k, sched::kTagDiagPredCol));
    }

    // --- PanelUpdate with predecessor propagation ------------------------
    if (me.row == krow && nlc > 0) {
      // Row panel: A(k,:) ← A(k,:) ⊕ akk ⊗ A(k,:); pred from the panel
      // itself (pred(i,j) ← pred_panel(t,j)).
      auto strip = local.sub(a.local_row(k) * b, 0, b, nlc * b);
      auto pstrip = plocal.sub(pred.local_row(k) * b, 0, b, nlc * b);
      parfw::detail::srgemm_with_pred<S>(
          akk.view(), MatrixView<const T>(strip),
          strip, MatrixView<const std::int64_t>(pstrip), pstrip);
      rowp.view().copy_from(MatrixView<const T>(strip));
      rowp_pred.view().copy_from(MatrixView<const std::int64_t>(pstrip));
    }
    if (me.col == kcol && nlr > 0) {
      // Column panel: A(:,k) ← A(:,k) ⊕ A(:,k) ⊗ akk; pred from akk's
      // predecessors (intermediate t lives in the k-th block row).
      auto strip = local.sub(0, a.local_col(k) * b, nlr * b, b);
      auto pstrip = plocal.sub(0, pred.local_col(k) * b, nlr * b, b);
      parfw::detail::srgemm_with_pred<S>(
          MatrixView<const T>(strip), akk.view(), strip,
          MatrixView<const std::int64_t>(akk_pred.view()), pstrip);
      colp.view().copy_from(MatrixView<const T>(strip));
    }

    // --- PanelBcast: row panel carries predecessors too -------------------
    col_comm.bcast_bytes(bytes_of(rowp), krow, sched::tag_of(k, sched::kTagRowPanel));
    col_comm.bcast_bytes(bytes_of(rowp_pred), krow,
                         sched::tag_of(k, sched::kTagRowPanelPred));
    row_comm.bcast_bytes(bytes_of(colp), kcol, sched::tag_of(k, sched::kTagColPanel));

    // --- OuterUpdate with predecessor propagation -------------------------
    // Unlike the value-only solver we must NOT re-apply the update to the
    // k-th panels here (value-idempotent but the predecessor rewrite rule
    // reads rowp_pred, which for the panel rows would self-assign stale
    // entries); skip the k-row and k-col strips explicitly.
    for (std::size_t il = 0; il < nlr; ++il) {
      if (a.global_row(il) == k) continue;
      for (std::size_t jl = 0; jl < nlc; ++jl) {
        if (a.global_col(jl) == k) continue;
        parfw::detail::srgemm_with_pred<S>(
            MatrixView<const T>(colp.sub(il * b, 0, b, b)),
            MatrixView<const T>(rowp.sub(0, jl * b, b, b)),
            a.block(il, jl),
            MatrixView<const std::int64_t>(rowp_pred.sub(0, jl * b, b, b)),
            plocal.sub(il * b, jl * b, b, b));
      }
    }
  }
}

/// Initialise a distributed predecessor layout consistent with
/// init_predecessors: pred(i,j) = i when dist(i,j) is finite or i == j,
/// else -1. Operates on this rank's blocks only.
template <typename S>
void init_predecessors_dist(const BlockCyclicMatrix<typename S::value_type>& a,
                            BlockCyclicMatrix<std::int64_t>& pred) {
  const std::size_t b = a.block_size();
  const auto& local = a.local();
  auto& plocal = pred.local();
  for (std::size_t il = 0; il < a.local_block_rows(); ++il)
    for (std::size_t jl = 0; jl < a.local_block_cols(); ++jl) {
      const std::size_t gi0 = a.global_row(il) * b;
      const std::size_t gj0 = a.global_col(jl) * b;
      for (std::size_t i = 0; i < b; ++i)
        for (std::size_t j = 0; j < b; ++j) {
          const std::size_t gi = gi0 + i, gj = gj0 + j;
          const auto v = local(il * b + i, jl * b + j);
          if (gi == gj)
            plocal(il * b + i, jl * b + j) = static_cast<std::int64_t>(gi);
          else
            plocal(il * b + i, jl * b + j) =
                v != S::zero() ? static_cast<std::int64_t>(gi) : -1;
        }
    }
}

}  // namespace parfw::dist
