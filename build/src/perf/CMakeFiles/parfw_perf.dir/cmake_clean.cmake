file(REMOVE_RECURSE
  "CMakeFiles/parfw_perf.dir/cost_model.cpp.o"
  "CMakeFiles/parfw_perf.dir/cost_model.cpp.o.d"
  "CMakeFiles/parfw_perf.dir/des.cpp.o"
  "CMakeFiles/parfw_perf.dir/des.cpp.o.d"
  "CMakeFiles/parfw_perf.dir/experiments.cpp.o"
  "CMakeFiles/parfw_perf.dir/experiments.cpp.o.d"
  "CMakeFiles/parfw_perf.dir/machine.cpp.o"
  "CMakeFiles/parfw_perf.dir/machine.cpp.o.d"
  "CMakeFiles/parfw_perf.dir/schedule.cpp.o"
  "CMakeFiles/parfw_perf.dir/schedule.cpp.o.d"
  "libparfw_perf.a"
  "libparfw_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfw_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
