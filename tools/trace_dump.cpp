// trace_dump — execute one ParallelFw variant, real or simulated, and
// write the run's Chrome-trace JSON (load it in chrome://tracing or
// https://ui.perfetto.dev; see README "Tracing").
//
// All modes interpret the SAME schedule IR (src/sched/ir.hpp):
//   --mode real     runs dist::parallel_fw over the in-process mpisim
//                   runtime (threads as ranks) and records wall-clock op
//                   events plus per-message delivery instants;
//   --mode des      lowers the schedule for a Summit-scale cluster and
//                   records the discrete-event simulator's virtual
//                   timeline;
//   --mode metrics  runs BOTH interpreters over one schedule and prints
//                   the measured-vs-modelled reconciliation table
//                   (telemetry/reconcile.hpp): wire bytes must match the
//                   DES prediction exactly, compute phases must match in
//                   count and flops, and per-phase time shares are
//                   compared within --band. Exits non-zero when the
//                   exact checks fail. --metrics-json / --metrics-prom
//                   additionally export the run's metric registry.
//   --mode check    validates an existing trace file (--in): truncated
//                   or malformed JSON yields a clear diagnostic with the
//                   failure offset and a nonzero exit; with --out the
//                   validated trace is rewritten normalised (flow events
//                   regenerated from the matched send/recv pairs).
//
// All write paths verify the output stream after flushing — a full disk
// or closed pipe is an error, never a silently truncated document.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "causal/trace_io.hpp"
#include "dist/block_cyclic.hpp"
#include "dist/driver.hpp"
#include "dist/grid.hpp"
#include "dist/parallel_fw.hpp"
#include "perf/des.hpp"
#include "perf/experiments.hpp"
#include "perf/schedule.hpp"
#include "sched/trace.hpp"
#include "telemetry/adapters.hpp"
#include "telemetry/export.hpp"
#include "telemetry/reconcile.hpp"
#include "util/cli.hpp"

using namespace parfw;

namespace {

void print_usage() {
  std::puts(
      "trace_dump - write a Chrome-trace JSON of one ParallelFw run\n"
      "  --mode real|des|metrics|check  execution mode (default real)\n"
      "  --variant V         baseline|pipelined|async|offload (default async)\n"
      "  --out FILE          output path (default trace.json)\n"
      "check mode (validate an existing trace file):\n"
      "  --in FILE           trace to validate; nonzero exit + diagnostic\n"
      "                      on truncated/malformed input; --out rewrites\n"
      "                      the validated trace normalised\n"
      "real mode:\n"
      "  --pr R --pc C       process grid (default 2x2)\n"
      "  --n N --block B     matrix size / block size (default 96 / 8)\n"
      "des mode:\n"
      "  --nodes N           cluster nodes (default 4)\n"
      "  --n N --block B     vertices / block size (default 65536 / 768)\n"
      "  --reordered         tiled (Figure 1) placement\n"
      "metrics mode (real + DES of one schedule, reconciled):\n"
      "  --pr R --pc C --n N --block B --reordered   as real mode\n"
      "  --band F            phase-share tolerance (default 0.25)\n"
      "  --metrics-json FILE write the metric registry as JSON\n"
      "  --metrics-prom FILE write the metric registry as Prometheus text\n");
}

int parse_variant(const std::string& name, dist::Variant* out) {
  // auto is a front-door request (parfw::solve resolves it through the
  // tuner); this tool replays one CONCRETE schedule.
  if (sched::variant_from_name(name, out, /*allow_auto=*/false)) return 0;
  std::fprintf(stderr, "unknown --variant '%s' (valid: %s)\n", name.c_str(),
               sched::variant_names().c_str());
  return 2;
}

int run_real(const CliArgs& args, dist::Variant variant,
             sched::ChromeTraceSink& sink) {
  using S = MinPlus<float>;
  const int pr = static_cast<int>(args.get_int("pr", 2));
  const int pc = static_cast<int>(args.get_int("pc", 2));
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 96));
  const std::size_t b = static_cast<std::size_t>(args.get_int("block", 8));
  const auto grid = dist::GridSpec::row_major(pr, pc);

  dist::DistFwOptions opt;
  opt.variant = variant;
  opt.block_size = b;
  opt.trace = &sink;
  if (variant == dist::Variant::kOffload) {
    opt.oog.mx = opt.oog.nx = 2 * b;
    opt.oog.num_streams = 2;
  }

  mpi::RuntimeOptions ropt;
  ropt.node_model = grid.node_model(std::max(1, grid.size() / 2));
  ropt.trace = &sink;

  DenseEntryGen<float> gen(7, 0.85, 1.0f, 90.0f, /*integral=*/true);
  mpi::Runtime::run(
      grid.size(),
      [&](mpi::Comm& world) {
        dist::BlockCyclicMatrix<float> local(n, b, grid,
                                             grid.coord_of(world.rank()));
        local.fill(gen);
        world.barrier();
        dist::parallel_fw<S>(world, local, opt);
      },
      ropt);
  return 0;
}

int run_des(const CliArgs& args, dist::Variant variant,
            sched::ChromeTraceSink& sink) {
  const perf::MachineConfig m = perf::MachineConfig::summit();
  const int nodes = static_cast<int>(args.get_int("nodes", 4));
  const double n = static_cast<double>(args.get_int("n", 65536));
  const double b = static_cast<double>(args.get_int("block", 768));
  const perf::GridSetup setup =
      perf::make_grid(m, nodes, args.get_bool("reordered"));
  const perf::RunPoint p = perf::simulate_fw_placement(
      m, variant, setup, nodes, n, b, /*comm_only=*/false, &sink);
  std::fprintf(stderr, "simulated %.3f s makespan, %.2f PFLOP/s\n", p.seconds,
               p.pflops);
  return 0;
}

// Run the data-carrying interpreter and the DES over the SAME schedule,
// reconcile the two traces, and print the side-by-side phase table. Exit
// status reflects the exact checks (wire bytes, compute counts/flops);
// share-band deviations are flagged in the table but do not fail the
// tool — absolute DES times model Summit GPUs, not this host.
int run_metrics(const CliArgs& args, dist::Variant variant) {
  using S = MinPlus<float>;
  const int pr = static_cast<int>(args.get_int("pr", 2));
  const int pc = static_cast<int>(args.get_int("pc", 2));
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 96));
  const std::size_t b = static_cast<std::size_t>(args.get_int("block", 8));
  const bool reordered = args.get_bool("reordered");
  const auto grid = reordered ? dist::GridSpec::tiled(pr, 1, 1, pc)
                              : dist::GridSpec::row_major(pr, pc);
  const int ranks_per_node = std::max(1, grid.size() / 2);

  telemetry::Registry reg;
  sched::StatsTraceSink measured;

  dist::DistFwOptions opt;
  opt.variant = variant;
  opt.block_size = b;
  // The DES costs diagonal closures as log-squaring (the GPU-friendly
  // strategy the modelled machine runs); use it here too so the exact
  // flops check compares like with like.
  opt.diag = DiagStrategy::kLogSquaring;
  opt.trace = &measured;
  opt.metrics = &reg;
  if (variant == dist::Variant::kOffload) {
    opt.oog.mx = opt.oog.nx = 2 * b;
    opt.oog.num_streams = 2;
  }

  mpi::RuntimeOptions ropt;
  ropt.node_model = grid.node_model(ranks_per_node);
  ropt.trace = &measured;
  ropt.metrics = &reg;

  DenseEntryGen<float> gen(7, 0.85, 1.0f, 90.0f, /*integral=*/true);
  const mpi::TrafficStats full = mpi::Runtime::run(
      grid.size(),
      [&](mpi::Comm& world) {
        dist::BlockCyclicMatrix<float> local(n, b, grid,
                                             grid.coord_of(world.rank()));
        local.fill(gen);
        world.barrier();
        dist::parallel_fw<S>(world, local, opt);
      },
      ropt);

  // The communicator split inside parallel_fw exchanges its own messages;
  // run it alone and subtract, so the measured wire bytes cover exactly
  // the schedule's traffic (the DES-vs-real tests use the same split).
  mpi::RuntimeOptions sropt;
  sropt.node_model = ropt.node_model;
  const mpi::TrafficStats split_only = mpi::Runtime::run(
      grid.size(),
      [&](mpi::Comm& world) { (void)dist::make_row_col_comms(world, grid); },
      sropt);

  // DES of the same schedule on the modelled machine.
  perf::FwProblem prob;
  prob.variant = variant;
  prob.n = static_cast<double>(n);
  prob.b = static_cast<double>(b);
  prob.offload_mx = static_cast<double>(2 * b);
  std::vector<int> node_of(static_cast<std::size_t>(grid.size()));
  for (int w = 0; w < grid.size(); ++w)
    node_of[static_cast<std::size_t>(w)] = ropt.node_model.node(w);
  const perf::MachineConfig m = perf::MachineConfig::summit();
  const perf::BuiltProgram built =
      perf::build_fw_program(m, prob, grid, node_of);
  sched::StatsTraceSink modelled;
  (void)perf::simulate(built.programs, built.node_of, m, &modelled);
  const perf::WireTotals wire =
      perf::program_traffic(built.programs, built.node_of);

  const auto measured_wire =
      static_cast<std::int64_t>(full.bytes_total - split_only.bytes_total);
  const telemetry::ReconcileReport rep = telemetry::reconcile(
      measured.table(), modelled.table(), measured_wire, wire.bytes_total,
      args.get_double("band", 0.25));

  std::printf("variant %s, %dx%d grid (%s), n=%zu b=%zu\n",
              dist::variant_name(variant), pr, pc,
              reordered ? "tiled" : "row-major", n, b);
  std::fputs(rep.table().c_str(), stdout);

  // Registry exports (CI artifacts): live series plus the aggregate
  // TrafficStats snapshot through the adapter.
  telemetry::publish_traffic_stats(reg, full);
  if (args.has("metrics-json")) {
    std::ofstream os(args.get("metrics-json", ""));
    if (!os) {
      std::fprintf(stderr, "cannot open '%s'\n",
                   args.get("metrics-json", "").c_str());
      return 1;
    }
    telemetry::to_json(reg, os);
  }
  if (args.has("metrics-prom")) {
    std::ofstream os(args.get("metrics-prom", ""));
    if (!os) {
      std::fprintf(stderr, "cannot open '%s'\n",
                   args.get("metrics-prom", "").c_str());
      return 1;
    }
    telemetry::to_prometheus(reg, os);
  }

  const auto mismatches = rep.exact_mismatches();
  if (!rep.bytes_match()) {
    std::fprintf(stderr, "FAIL: wire bytes diverge from the DES prediction\n");
    return 1;
  }
  if (!mismatches.empty()) {
    std::fprintf(stderr, "FAIL: compute phases diverge:");
    for (const std::string& p : mismatches)
      std::fprintf(stderr, " %s", p.c_str());
    std::fputc('\n', stderr);
    return 1;
  }
  return 0;
}

// Validate (and optionally rewrite, normalised) an existing trace file.
// The loader is strict: truncated documents, syntax errors and events
// missing required fields are reported with the byte offset / event
// index of the failure and a nonzero exit — never a partial JSON.
int run_check(const CliArgs& args) {
  const std::string in = args.get("in", "");
  if (in.empty()) {
    std::fprintf(stderr, "--mode check needs --in FILE\n");
    return 2;
  }
  const causal::LoadResult loaded = causal::load_chrome_trace_file(in);
  if (!loaded.ok) {
    std::fprintf(stderr, "trace_dump: invalid trace: %s\n",
                 loaded.error.c_str());
    return 1;
  }
  std::fprintf(stderr, "%s: ok, %zu events\n", in.c_str(),
               loaded.events.size());
  if (args.has("out")) {
    sched::ChromeTraceSink sink;
    for (const sched::TraceEvent& e : loaded.events) sink.record(e);
    const std::string out = args.get("out", "");
    std::ofstream os(out);
    if (!os) {
      std::fprintf(stderr, "cannot open '%s'\n", out.c_str());
      return 1;
    }
    sink.write(os);
    os.flush();
    if (!os) {
      std::fprintf(stderr, "write failed on '%s'\n", out.c_str());
      return 1;
    }
    std::fprintf(stderr, "rewrote %zu events to %s\n", loaded.events.size(),
                 out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv,
                     {"mode", "variant", "out", "in", "pr", "pc", "n", "block",
                      "nodes", "reordered", "band", "metrics-json",
                      "metrics-prom", "help"});
  if (args.get_bool("help")) {
    print_usage();
    return 0;
  }
  const std::string mode = args.get("mode", "real");
  if (mode == "check") return run_check(args);
  dist::Variant variant = dist::Variant::kAsync;
  if (int rc = parse_variant(args.get("variant", "async"), &variant)) return rc;
  if (mode == "metrics") return run_metrics(args, variant);

  sched::ChromeTraceSink sink;
  int rc;
  if (mode == "real")
    rc = run_real(args, variant, sink);
  else if (mode == "des")
    rc = run_des(args, variant, sink);
  else {
    std::fprintf(stderr, "unknown --mode '%s'\n", mode.c_str());
    return 2;
  }
  if (rc != 0) return rc;

  const std::string out = args.get("out", "trace.json");
  std::ofstream os(out);
  if (!os) {
    std::fprintf(stderr, "cannot open '%s'\n", out.c_str());
    return 1;
  }
  sink.write(os);
  os.flush();
  if (!os) {
    std::fprintf(stderr, "write failed on '%s'\n", out.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %zu events to %s\n", sink.size(), out.c_str());
  return 0;
}
