file(REMOVE_RECURSE
  "../bench/bench_engines"
  "../bench/bench_engines.pdb"
  "CMakeFiles/bench_engines.dir/bench_engines.cpp.o"
  "CMakeFiles/bench_engines.dir/bench_engines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
