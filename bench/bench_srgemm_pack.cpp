// Ablation — operand packing in the SRGEMM kernel (DESIGN.md §4).
//
// The blocked-FW hot shape multiplies thin panels that are strided views
// of a much larger matrix (ld >> cols). Packing copies each macro tile
// into contiguous scratch before the register sweep, trading O(mn+nk)
// copies for dense streaming in the O(mnk) loop — the GotoBLAS recipe the
// paper's CUTLASS kernel applies on the GPU side via shared-memory tiles.
//
// Three rungs are measured on strided panels: the scalar kernels
// (unpacked vs packed — note the packed kernel now packs each A tile once
// per (i0,k0), not once per column panel), the SIMD kernel, and the
// *persistent* prepacked path: one panel snapshot feeding all four
// MinPlusOuter quadrants of a blocked-FW round, the way blocked_fw and
// parallel_fw now run (BM_FwRound*).
#include <benchmark/benchmark.h>

#include "graph/graph.hpp"
#include "semiring/semiring.hpp"
#include "srgemm/srgemm.hpp"

namespace {

using S = parfw::MinPlus<float>;

/// Panels carved out of a big matrix (ld = 2048 regardless of panel size).
struct StridedOperands {
  parfw::Matrix<float> backing;
  parfw::MatrixView<const float> a, b;
  parfw::MatrixView<float> c;

  StridedOperands(std::size_t m, std::size_t n, std::size_t k)
      : backing(2048, 2048) {
    parfw::DenseEntryGen<float> gen(7, 1.0, 1.0f, 99.0f);
    gen.fill_block(0, 0, backing.view());
    a = backing.sub(0, 0, m, k);
    b = backing.sub(0, 512, k, n);
    c = backing.sub(512, 512, m, n);
  }
};

void run_panel(benchmark::State& state, parfw::srgemm::Kernel kernel) {
  const std::size_t m = 1024, n = 1024,
                    k = static_cast<std::size_t>(state.range(0));
  StridedOperands ops(m, n, k);
  auto cfg = parfw::srgemm::Config::tuned();
  cfg.kernel = kernel;
  for (auto _ : state) {
    parfw::srgemm::multiply<S>(ops.a, ops.b, ops.c, cfg);
    benchmark::DoNotOptimize(ops.c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      parfw::srgemm::flops(m, n, k) * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_PanelShapeUnpacked(benchmark::State& state) {
  run_panel(state, parfw::srgemm::Kernel::kTiled);
}
BENCHMARK(BM_PanelShapeUnpacked)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_PanelShapePacked(benchmark::State& state) {
  run_panel(state, parfw::srgemm::Kernel::kPacked);
}
BENCHMARK(BM_PanelShapePacked)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_PanelShapeSimd(benchmark::State& state) {
  run_panel(state, parfw::srgemm::Kernel::kSimd);
}
BENCHMARK(BM_PanelShapeSimd)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// One blocked-FW round's MinPlusOuter phase: four quadrant updates that all
// consume the same pivot row/column panels (pivot block in the middle of an
// n x n matrix, block size b = range(0)).
// ---------------------------------------------------------------------------

struct FwRound {
  parfw::Matrix<float> a;
  std::size_t n, b, k0;

  explicit FwRound(std::size_t n_, std::size_t b_) : a(n_, n_), n(n_), b(b_) {
    parfw::DenseEntryGen<float> gen(11, 1.0, 1.0f, 99.0f);
    gen.fill_block(0, 0, a.view());
    k0 = n / 2;
  }

  template <typename Quadrant>
  void quadrants(Quadrant&& q) {
    const std::size_t after0 = k0 + b, after_n = n - after0;
    q(0, k0, 0, k0);
    q(0, k0, after0, after_n);
    q(after0, after_n, 0, k0);
    q(after0, after_n, after0, after_n);
  }
};

double fw_round_flops(std::size_t n, std::size_t b) {
  return parfw::srgemm::flops(n - b, n - b, b);
}

/// The pre-tentpole default: every quadrant re-packs its own strided
/// slices of the pivot panels inside the kernel.
void BM_FwRoundRepack(benchmark::State& state) {
  const std::size_t n = 1024, b = static_cast<std::size_t>(state.range(0));
  FwRound fw(n, b);
  auto cfg = parfw::srgemm::Config::tuned();
  for (auto _ : state) {
    fw.quadrants([&](std::size_t r0, std::size_t nr, std::size_t c0,
                     std::size_t nc) {
      if (nr == 0 || nc == 0) return;
      parfw::srgemm::multiply<S>(fw.a.sub(r0, fw.k0, nr, b),
                                 fw.a.sub(fw.k0, c0, b, nc),
                                 fw.a.sub(r0, c0, nr, nc), cfg);
    });
    benchmark::DoNotOptimize(fw.a.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      fw_round_flops(n, b) * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FwRoundRepack)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

/// Persistent panel packing: snapshot the pivot panels once per round and
/// run every quadrant through multiply_prepacked (what blocked_fw does
/// with prepack_panels, the default).
void BM_FwRoundPrepacked(benchmark::State& state) {
  const std::size_t n = 1024, b = static_cast<std::size_t>(state.range(0));
  FwRound fw(n, b);
  auto cfg = parfw::srgemm::Config::tuned();
  parfw::Matrix<float> row_panel(b, n), col_panel(n, b);
  for (auto _ : state) {
    row_panel.view().copy_from(fw.a.sub(fw.k0, 0, b, n));
    col_panel.view().copy_from(fw.a.sub(0, fw.k0, n, b));
    fw.quadrants([&](std::size_t r0, std::size_t nr, std::size_t c0,
                     std::size_t nc) {
      if (nr == 0 || nc == 0) return;
      parfw::srgemm::multiply_prepacked<S>(col_panel.sub(r0, 0, nr, b),
                                           row_panel.sub(0, c0, b, nc),
                                           fw.a.sub(r0, c0, nr, nc), cfg);
    });
    benchmark::DoNotOptimize(fw.a.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      fw_round_flops(n, b) * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FwRoundPrepacked)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
