// Asynchronous execution stream (the cudaStream_t analogue).
//
// Each Stream owns one worker thread draining a FIFO of ops: enqueue
// order == execution order within a stream; different streams run
// concurrently. Events are fence objects recorded into the FIFO.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

namespace parfw::dev {

/// Completion fence (cudaEvent analogue). Copyable handle; wait() blocks
/// the host until the recording stream has executed past the record point.
class Event {
 public:
  Event() : state_(std::make_shared<State>()) {}

  void wait() const {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->done; });
  }

  bool query() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->done;
  }

 private:
  friend class Stream;
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };
  void signal() const {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      state_->done = true;
    }
    state_->cv.notify_all();
  }
  std::shared_ptr<State> state_;
};

class Stream {
 public:
  Stream();
  ~Stream();

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  /// Enqueue an op; returns immediately (async wrt the host).
  void enqueue(std::function<void()> op);

  /// Record a fence after everything enqueued so far.
  Event record();

  /// Block the host until the stream has drained (cudaStreamSynchronize).
  void synchronize();

  /// Ops executed so far (monotone counter, for tests).
  std::uint64_t completed() const;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;        // wakes the worker
  std::condition_variable drained_;   // wakes synchronize()
  std::deque<std::function<void()>> fifo_;
  std::uint64_t completed_ = 0;
  bool stop_ = false;
  bool idle_ = true;
  std::thread worker_;
};

}  // namespace parfw::dev
