// analysis — critical path, per-op slack, blame attribution and what-if
// re-costing over the happens-before DAG (DESIGN.md §4.9).
//
// The critical path is extracted by a backward binding-predecessor walk
// from the latest node: at every node the predecessor with the largest
// timestamp is the one that actually gated it, the interval between them
// becomes a path segment, and the cursor is clamped monotonically so the
// segments PARTITION [t_min, t_max] — their sum equals the trace span
// exactly (no epsilon), which is what makes the DES cross-check in the
// acceptance criteria an equality, not an approximation.
//
// Blame categories:
//   compute     a compute op's own span (Diag/Panel/Lookahead/Outer
//               updates, oogHost chunk merges)
//   comm        a comm op's own span, message transit (send -> recv
//               edges), and first-attempt delivery waits
//   retransmit  transit into a recv whose matched message needed a
//               retransmission (attempt > 0) — time bought back only by
//               fixing loss, not by faster links
//   checkpoint  Checkpoint spans and barrier-join waits
//   stall       gaps where the path waits for an op to start (scheduling
//               /dependency idleness not explained by any edge work)
//   io          store reads — serve-trace cache-miss get_ranges spans
//               (serveIO). Solve traces never emit it; serve traces use it
//               so the blame split separates "waiting on the tile store"
//               from walk compute and shard-hop comm.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "causal/graph.hpp"
#include "telemetry/metrics.hpp"

namespace parfw::causal {

enum class Category : std::uint8_t {
  kCompute = 0,
  kComm = 1,
  kStall = 2,
  kRetransmit = 3,
  kCheckpoint = 4,
  kIo = 5,
};
inline constexpr int kNumCategories = 6;
const char* category_name(Category c);

/// Category of an event's own execution time, by op name.
Category category_of(const sched::TraceEvent& e);

/// FW phase of an event: "diag", "panel", "update", "checkpoint",
/// "other" (runtime-internal events: msg, recv, retry, ...).
const char* phase_of(const sched::TraceEvent& e);

/// One interval of the critical path: [t_lo, t_hi] attributed to
/// `event` (index into Graph::events, or -1 for a leading stall before
/// the first caused op) with the given category.
struct PathSegment {
  double t_lo = 0.0;
  double t_hi = 0.0;
  int event = -1;
  int rank = -1;
  Category cat = Category::kStall;
};

/// One row of the top-k blocking-ops table: an op holding the most
/// critical-path time. Slack is 0 by definition for on-path ops; the
/// table also surfaces each op's total duration so "long but off the
/// path" work is distinguishable from true stragglers.
struct Straggler {
  int event = -1;
  double on_path_seconds = 0.0;
  double duration = 0.0;
};

struct CategoryTotals : std::array<double, kNumCategories> {
  CategoryTotals() { fill(0.0); }
};

struct BlameReport {
  double span = 0.0;  ///< t_max - t_min; == critical-path length == Σ path
  CategoryTotals by_category;
  std::map<int, CategoryTotals> by_rank;          ///< on-path time per rank
  std::map<std::string, CategoryTotals> by_phase;  ///< per FW phase
  std::vector<PathSegment> path;                  ///< earliest first
  std::vector<Straggler> top;                     ///< top-k blocking ops
  /// Per-event slack: how much the op could stretch without lengthening
  /// the span (0 for critical ops). Indexed like Graph::events.
  std::vector<double> slack;

  double category(Category c) const {
    return by_category[static_cast<std::size_t>(c)];
  }
  double share(Category c) const {
    return span > 0.0 ? category(c) / span : 0.0;
  }
};

struct AnalysisOptions {
  int top_k = 10;
};

/// Run the full analysis. Returns false (with `error` set) when the
/// graph is cyclic — a malformed trace.
bool analyze(const Graph& g, const AnalysisOptions& opt, BlameReport* out,
             std::string* error);

/// Human-readable blame report (category split, per-rank and per-phase
/// tables, straggler list).
std::string format_report(const Graph& g, const BlameReport& r);

/// What-if re-coster: replay the critical path with comm (link) and
/// compute (kernel) segments scaled by 1/speedup. Stall, checkpoint and
/// retransmit time is structural and kept as-is — this predicts the
/// makespan of the SAME path under a faster machine; the DES confirms it
/// end-to-end by re-running with the scaled MachineConfig (the path may
/// additionally reshape, so the prediction is an upper bound).
struct WhatIf {
  double comm_speedup = 1.0;
  double compute_speedup = 1.0;
  double io_speedup = 1.0;  ///< scales kIo segments (serve-trace store reads)
};
double recost(const BlameReport& r, const WhatIf& w);

/// The recost() limit under infinite comm AND compute speedups: the part
/// of the critical path no faster machine can buy back (stall +
/// retransmit + checkpoint time). This is the number that says "the
/// SCHEDULE, not the hardware, is the bottleneck" — the tuner reads it to
/// decide which configuration dimensions have slack worth searching
/// (a high floor means reshaping the schedule, not scaling rates).
double structural_floor(const BlameReport& r);

/// Publish cp.* series into a metrics registry: cp.length, and
/// cp.share{category=...} per blame category — the attribution-drift
/// gate bench_compare.py consumes.
void publish_blame(const BlameReport& r, telemetry::Registry& reg);

/// Graphviz dump of the critical path (and its immediate off-path
/// predecessors) for visual inspection.
void write_dot(const Graph& g, const BlameReport& r, std::ostream& os);

}  // namespace parfw::causal
