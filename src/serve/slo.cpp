#include "serve/slo.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace parfw::serve {

SloMonitor::SloMonitor(SloConfig cfg) : cfg_(cfg) {
  PARFW_CHECK_MSG(cfg_.window > 0, "SLO window must be positive");
  PARFW_CHECK_MSG(cfg_.budget > 0.0, "SLO budget must be positive");
}

void SloMonitor::record(const QueryStats& q) {
  ++total_;
  const bool violated =
      cfg_.p99_target_s > 0.0 && q.total > cfg_.p99_target_s;
  if (violated) ++violations_;

  if (ring_.size() < cfg_.window) {
    ring_.push_back(q.total);
    ring_violated_.push_back(violated);
    if (violated) ++window_violations_;
  } else {
    if (ring_violated_[ring_next_]) --window_violations_;
    ring_[ring_next_] = q.total;
    ring_violated_[ring_next_] = violated;
    if (violated) ++window_violations_;
    ring_next_ = (ring_next_ + 1) % cfg_.window;
  }

  const double threshold = cfg_.slow_threshold();
  if (threshold > 0.0 && q.total > threshold) {
    slow_log_.push_back(q);
    while (slow_log_.size() > cfg_.slow_log_capacity) slow_log_.pop_front();
  }

  // Burn alert, edge-triggered on the cheap incremental burn (the full
  // report() sorts the window — not per query).
  if (cfg_.on_burn_alert && cfg_.p99_target_s > 0.0 && !ring_.empty()) {
    const double burn = static_cast<double>(window_violations_) /
                        static_cast<double>(ring_.size()) / cfg_.budget;
    if (burn >= cfg_.burn_alert_threshold) {
      if (!burning_) {
        burning_ = true;
        cfg_.on_burn_alert(report());
      }
    } else {
      burning_ = false;
    }
  }
}

SloReport SloMonitor::report() const {
  SloReport r;
  r.total = total_;
  r.window_count = ring_.size();
  r.p50_target = cfg_.p50_target_s;
  r.p99_target = cfg_.p99_target_s;
  r.violations = violations_;
  if (ring_.empty()) return r;

  std::vector<double> sorted(ring_);
  std::sort(sorted.begin(), sorted.end());
  auto quant = [&](double p) {
    auto i = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(sorted.size())));
    if (i > 0) --i;
    return sorted[std::min(i, sorted.size() - 1)];
  };
  r.p50 = quant(0.50);
  r.p99 = quant(0.99);
  r.p50_ok = cfg_.p50_target_s <= 0.0 || r.p50 <= cfg_.p50_target_s;
  r.p99_ok = cfg_.p99_target_s <= 0.0 || r.p99 <= cfg_.p99_target_s;
  if (cfg_.p99_target_s > 0.0) {
    const double share = static_cast<double>(window_violations_) /
                         static_cast<double>(ring_.size());
    r.burn_rate = share / cfg_.budget;
  }
  return r;
}

void SloMonitor::publish(telemetry::Registry& reg,
                         const std::string& labels) const {
  const SloReport r = report();
  reg.gauge("serve.slo.p50", labels).set(r.p50);
  reg.gauge("serve.slo.p99", labels).set(r.p99);
  reg.gauge("serve.slo.burn_rate", labels).set(r.burn_rate);
  reg.gauge("serve.slo.violations", labels)
      .set(static_cast<double>(r.violations));
}

std::string format_slo_report(const SloReport& r) {
  std::ostringstream os;
  os << "SLO: " << r.total << " queries (" << r.window_count
     << " in window), p50 " << r.p50 * 1e6 << " us";
  if (r.p50_target > 0.0)
    os << " vs " << r.p50_target * 1e6 << " us target ["
       << (r.p50_ok ? "ok" : "VIOLATED") << "]";
  os << ", p99 " << r.p99 * 1e6 << " us";
  if (r.p99_target > 0.0) {
    os << " vs " << r.p99_target * 1e6 << " us target ["
       << (r.p99_ok ? "ok" : "VIOLATED") << "], " << r.violations
       << " violations all-time, burn rate " << r.burn_rate
       << (r.burn_rate > 1.0 ? " (OVER BUDGET)" : "");
  }
  os << "\n";
  return os.str();
}

std::string format_slow_log(const SloMonitor& m) {
  std::ostringstream os;
  const auto& log = m.slow_log();
  os << "slow queries (threshold " << m.config().slow_threshold() * 1e6
     << " us, " << log.size() << " of " << m.config().slow_log_capacity
     << " slots):\n";
  for (const QueryStats& q : log) {
    os << "  qid " << q.qid << ": " << q.total * 1e6 << " us |";
    for (int s = 0; s < kNumStages - 1; ++s)
      os << " " << stage_name(static_cast<Stage>(s)) << " "
         << q.stage[static_cast<std::size_t>(s)] * 1e6 << " us";
    os << (q.ok ? "" : " [error]") << "\n";
  }
  return os.str();
}

}  // namespace parfw::serve
