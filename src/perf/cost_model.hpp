// Closed-form performance models from the paper.
//
//   Eq. (1)  T_fw = 2n³/P·t_f + 2(n/b)·t_l + t_w(n²/P_r + n²/P_c)
//   §3.4.1   per-node volume lower bound  t_w·n²(Q_r/P_r + Q_c/P_c)
//   §4.5     ooGSrGemm phase costs t0/t1/t2 and the s-stream combinations
//   Eq. (5)  minimum block size for offload to be compute-bound
//
// These are used three ways: to sanity-check the discrete-event simulator
// (tests assert agreement for the baseline), to pick tuning parameters,
// and to compute the figures' reference lines (peak, compute-bound
// threshold, GPU-memory feasibility).
#pragma once

#include <cstddef>

#include "perf/machine.hpp"

namespace parfw::perf {

struct GridShape {
  int pr = 1, pc = 1;  ///< process grid
  int qr = 1, qc = 1;  ///< intranode grid
  int kr() const { return pr / qr; }
  int kc() const { return pc / qc; }
  int ranks() const { return pr * pc; }
  int nodes() const { return kr() * kc(); }
};

/// Total FW flops under the paper's 2n³ convention.
double fw_flops(double n);

/// Eq. (1): bulk-synchronous ParallelFw time (no overlap), with t_w taken
/// from the NIC model for the given shape.
double model_fw_time(const MachineConfig& m, double n, double b,
                     const GridShape& g);

/// Pure compute time 2n³/(P·rank_flops) — the perfect-overlap floor.
double model_compute_time(const MachineConfig& m, double n, int ranks);

/// §3.4.1 per-node communication volume (bytes) for one full FW run:
/// n²·word·(Q_r/P_r + Q_c/P_c) = n²·word·(1/K_r + 1/K_c).
double model_node_volume(const MachineConfig& m, double n, const GridShape& g);

/// Minimum per-node volume over all node-grid factorisations of `nodes`
/// (the W_min of the paper's effective-bandwidth metric, §5.1.3).
double min_node_volume(const MachineConfig& m, double n, int nodes);

/// Effective per-node bandwidth metric (§5.1.3): W_min / t_fw.
double effective_bandwidth(const MachineConfig& m, double n, int nodes,
                           double t_fw);

/// Problem size above which ParallelFw is compute-bound on `nodes` nodes
/// (the dashed threshold in Figure 4; the paper quotes ~120k on 64 nodes).
double compute_bound_threshold(const MachineConfig& m, int nodes);

/// Largest n whose distance matrix fits in aggregate GPU memory on
/// `nodes` nodes (the "Beyond GPU Memory" wall of Figure 7).
double max_in_gpu_vertices(const MachineConfig& m, int nodes);

/// Largest n whose matrix fits in aggregate HOST memory (offload wall).
double max_in_host_vertices(const MachineConfig& m, int nodes);

// --- §4.5: out-of-device SRGEMM -------------------------------------------

struct OogCost {
  double t0 = 0;  ///< SRGEMM compute
  double t1 = 0;  ///< host<->device transfer
  double t2 = 0;  ///< hostUpdate (DRAM-bound)
  /// End-to-end time given `streams` (§4.5: no overlap / partial / full).
  double total(int streams) const;
};

/// Phase costs for C(m x n) ⊕= A(m x k) ⊗ B(k x n) through the offload
/// pipeline on one GPU.
OogCost model_oog_cost(const MachineConfig& m, double mm, double nn,
                       double kk);

/// Eq. (5): minimum block size k for ooGSrGemm to run at the GPU's
/// compute rate: k ≥ max(t_hd/(2 t_f), 3 t_m/(2 t_f)).
double min_offload_block(const MachineConfig& m);

/// Sustained flop rate of ooGSrGemm for square chunk size mx and panel
/// width k on an n x n problem, including pipeline fill/drain.
double model_oog_rate(const MachineConfig& m, double n, double mx, double k,
                      int streams);

}  // namespace parfw::perf
