file(REMOVE_RECURSE
  "libparfw_core.a"
)
