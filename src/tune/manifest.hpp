// manifest — persisted tuning winners (the PARFW_TUNE_CACHE format).
//
// A manifest is a small JSON document mapping workloads to the schedule
// the tuner picked for them, so `--variant auto` runs can skip the search
// entirely: parfw::solve (and tools/sched_tune --manifest) look the
// workload up by exact key — (n, ranks, ranks_per_node, word_bytes,
// track_paths, stall_weight) — and execute the stored winner when
// present. track_paths was added after version-1 manifests shipped; a row
// without the field reads as false, so old caches stay valid. The stored
// predicted numbers ride along for the tune.* telemetry and for the
// predicted-vs-achieved report; they are advisory, never used to alter
// the schedule.
//
// Format (version 1):
//   { "version": 1,
//     "entries": [ { "n": 49152, "ranks": 48, "ranks_per_node": 12,
//                    "word_bytes": 4, "stall_weight": 1.0,
//                    "variant": "pipelined",
//                    "tiled": true, "pr": 4, "pc": 6, "kr": 2, "kc": 2,
//                    "block": 256, "streams": 3,
//                    "predicted_makespan": ...,
//                    "predicted_stall_share": ...,
//                    "default_makespan": ...,
//                    "default_stall_share": ... } ] }
//
// Reads go through the strict causal::parse_json subset parser; a
// malformed manifest is a hard error (clear diagnostic), never a silent
// fall-through to re-tuning with a corrupt cache still on disk.
#pragma once

#include <string>
#include <vector>

#include "tune/tune.hpp"

namespace parfw::tune {

/// One manifest row: the lookup key (workload + stall_weight) and the
/// stored winner with its predicted/default numbers.
struct ManifestEntry {
  Workload workload{};
  double stall_weight = 1.0;
  Candidate winner{};
  double predicted_makespan = 0.0;
  double predicted_stall_share = 0.0;
  double default_makespan = 0.0;
  double default_stall_share = 0.0;
};

struct Manifest {
  std::vector<ManifestEntry> entries;

  /// Exact-key lookup (nullptr when absent). Matching is on the full
  /// workload AND the objective's stall_weight — a winner tuned for one
  /// objective must not answer for another.
  const ManifestEntry* find(const Workload& w, double stall_weight) const;

  /// Insert or overwrite the row with this entry's key.
  void put(const ManifestEntry& e);
};

/// Build the row a TuneReport would persist.
ManifestEntry to_entry(const TuneReport& r, double stall_weight);

/// Serialise to the version-1 JSON document.
std::string write_manifest(const Manifest& m);

/// Parse a manifest document / read one from disk. On failure returns
/// false and sets `error` (parse diagnostics include what was wrong and
/// where; unknown versions are rejected).
bool read_manifest(const std::string& text, Manifest* out, std::string* error);
bool read_manifest_file(const std::string& path, Manifest* out,
                        std::string* error);
bool write_manifest_file(const std::string& path, const Manifest& m,
                         std::string* error);

}  // namespace parfw::tune
