// Telemetry registry, exporters and reconciliation (DESIGN.md §4.8).
//
// Covers the four ISSUE-4 test families: registry concurrency (hammered
// from the thread pool — run under `check.sh --san thread` for the data
// race gate), histogram bucket boundaries, exporter golden files (the
// exporters promise deterministic bytes for a deterministic registry),
// and the end-to-end check that the METRICS path measures exactly the
// wire bytes the DES predicts, for two variants on both placements.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "dist/block_cyclic.hpp"
#include "dist/driver.hpp"
#include "dist/grid.hpp"
#include "dist/parallel_fw.hpp"
#include "perf/des.hpp"
#include "perf/schedule.hpp"
#include "telemetry/adapters.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/pool_metrics.hpp"
#include "telemetry/reconcile.hpp"
#include "util/thread_pool.hpp"

namespace parfw {
namespace {

using telemetry::Histogram;
using telemetry::Registry;

// --- registry basics ---------------------------------------------------------

TEST(Registry, HandlesAreStableAndLabelled) {
  Registry reg;
  telemetry::Counter& a = reg.counter("x.calls");
  telemetry::Counter& b = reg.counter("x.calls", "kernel=simd");
  EXPECT_NE(&a, &b);  // labels distinguish series
  EXPECT_EQ(&a, &reg.counter("x.calls"));  // stable handle
  a.add(3);
  b.inc();
  EXPECT_EQ(a.value(), 3u);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(reg.size(), 2u);

  reg.gauge("x.depth").set(7.5);
  reg.gauge("x.depth").update_max(2.0);  // lower: no-op
  EXPECT_DOUBLE_EQ(reg.gauge("x.depth").value(), 7.5);
  reg.gauge("x.depth").update_max(9.0);
  EXPECT_DOUBLE_EQ(reg.gauge("x.depth").value(), 9.0);
}

TEST(Registry, SnapshotSortedByNameThenLabels) {
  Registry reg;
  reg.counter("b.z");
  reg.counter("a.z", "k=2");
  reg.counter("a.z", "k=1");
  reg.counter("a.z");
  const auto rows = reg.snapshot();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].name, "a.z");
  EXPECT_EQ(rows[0].labels, "");
  EXPECT_EQ(rows[1].labels, "k=1");
  EXPECT_EQ(rows[2].labels, "k=2");
  EXPECT_EQ(rows[3].name, "b.z");
}

TEST(Registry, ScopedTimerNullHistogramIsNoop) {
  { telemetry::ScopedTimer t(nullptr); }  // must not crash
  Registry reg;
  Histogram& h = reg.histogram("t.seconds");
  { telemetry::ScopedTimer t(&h); }
  EXPECT_EQ(h.count(), 1u);
}

// --- histogram bucket boundaries ---------------------------------------------

TEST(HistogramBuckets, BoundariesAndEdges) {
  // Non-positive and sub-range values land in the first bucket; values
  // past the top land in the saturating last bucket.
  EXPECT_EQ(Histogram::bucket_of(0.0), 0);
  EXPECT_EQ(Histogram::bucket_of(-1.0), 0);
  EXPECT_EQ(Histogram::bucket_of(1e-12), 0);
  EXPECT_EQ(Histogram::bucket_of(1e300), Histogram::kBuckets - 1);

  // bucket_lower inverts bucket_of: a value strictly inside bucket i
  // maps back to i, across the whole range (kSub sub-buckets per
  // power of two).
  for (int i = 0; i < Histogram::kBuckets; i += 7) {
    const double inside = Histogram::bucket_lower(i) * 1.05;
    EXPECT_EQ(Histogram::bucket_of(inside), i) << "bucket " << i;
  }
  // 1.0 == 2^0 sits exactly at the lower bound of its bucket.
  EXPECT_EQ(Histogram::bucket_of(1.0), -Histogram::kMinExp * Histogram::kSub);
}

TEST(HistogramBuckets, QuantilesWithinOneBucketWidth) {
  Registry reg;
  Histogram& h = reg.histogram("q.test");
  for (int v = 1; v <= 100; ++v) h.observe(static_cast<double>(v));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  const telemetry::HistogramSummary s = h.summary();
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  // One bucket spans 2^(1/4) ≈ 1.19x; allow that relative error on both
  // sides of the exact quantile.
  EXPECT_NEAR(s.p50, 50.0, 50.0 * 0.2);
  EXPECT_NEAR(s.p95, 95.0, 95.0 * 0.2);
  EXPECT_NEAR(s.p99, 99.0, 99.0 * 0.2);
  // Quantiles are clamped into [min, max].
  EXPECT_GE(h.quantile(0.0), 1.0);
  EXPECT_LE(h.quantile(1.0), 100.0);
}

TEST(HistogramBuckets, FineResolutionSeparatesSubMicrosecondLatencies) {
  // 1.00 µs and 1.12 µs (ratio 1.12) straddle a bucket boundary at 8
  // sub-buckets per octave (width 2^(1/8) ≈ 1.090) but share a bucket at
  // the default 4 (width 2^(1/4) ≈ 1.189) — the reason the serve.* series
  // register at kServeHistSub = 8 rather than the default geometry.
  Registry reg;
  Histogram& coarse = reg.histogram("res.coarse");
  Histogram& fine = reg.histogram("res.fine", "", /*sub_per_octave=*/8);
  EXPECT_EQ(coarse.sub_per_octave(), Histogram::kSub);
  EXPECT_EQ(fine.sub_per_octave(), 8);
  for (int i = 0; i < 100; ++i) {
    coarse.observe(1.00e-6);
    fine.observe(1.00e-6);
  }
  for (int i = 0; i < 100; ++i) {
    coarse.observe(1.12e-6);
    fine.observe(1.12e-6);
  }
  // Same bucket at sub=4: the quantiles collapse to one midpoint.
  EXPECT_DOUBLE_EQ(coarse.quantile(0.25), coarse.quantile(0.95));
  // Distinct buckets at sub=8: the quantiles separate, in order.
  EXPECT_LT(fine.quantile(0.25), fine.quantile(0.95));

  // First registration wins: a later default-resolution lookup of the
  // same (name, labels) returns the existing fine-grained instance.
  EXPECT_EQ(&reg.histogram("res.fine"), &fine);
  EXPECT_EQ(reg.histogram("res.fine").sub_per_octave(), 8);
}

// --- concurrency hammer ------------------------------------------------------

TEST(RegistryConcurrency, HammerFromThreadPool) {
  Registry reg;
  telemetry::Counter& calls = reg.counter("hammer.calls");
  Histogram& vals = reg.histogram("hammer.values");
  telemetry::PoolMetrics pm(reg, "pool=hammer");

  constexpr int kTasks = 64;
  constexpr int kOpsPerTask = 1000;
  {
    // The pool is destroyed (workers joined) before the assertions: a
    // task's future resolves before its trailing on_task report, so
    // reading the observer series right after get() would race.
    ThreadPool pool(4);
    pool.set_observer(&pm);
    std::vector<std::future<void>> futs;
    futs.reserve(kTasks);
    for (int t = 0; t < kTasks; ++t) {
      futs.push_back(pool.submit([&reg, &calls, &vals, t] {
        for (int i = 0; i < kOpsPerTask; ++i) {
          calls.inc();
          vals.observe(static_cast<double>(t + 1));
          // Handle creation races with recording on other threads.
          reg.gauge("hammer.depth", "task=" + std::to_string(t % 8))
              .update_max(static_cast<double>(i));
        }
      }));
    }
    for (auto& f : futs) f.get();
  }

  EXPECT_EQ(calls.value(), static_cast<std::uint64_t>(kTasks) * kOpsPerTask);
  EXPECT_EQ(vals.count(), static_cast<std::uint64_t>(kTasks) * kOpsPerTask);
  EXPECT_DOUBLE_EQ(vals.sum(),
                   1000.0 * (kTasks * (kTasks + 1) / 2));  // Σ t·1000
  // The pool observer saw every task exactly once.
  EXPECT_EQ(reg.histogram("pool.task_run_seconds", "pool=hammer").count(),
            static_cast<std::uint64_t>(kTasks));
  for (int k = 0; k < 8; ++k)
    EXPECT_DOUBLE_EQ(
        reg.gauge("hammer.depth", "task=" + std::to_string(k)).value(),
        kOpsPerTask - 1);
}

TEST(RegistryConcurrency, ScopedPoolMetricsInlinePool) {
  // A 0-thread pool executes inline, so the observer reports
  // synchronously and the RAII attach/detach is fully deterministic.
  Registry reg;
  ThreadPool pool(0);
  {
    telemetry::ScopedPoolMetrics pm(pool, reg, "pool=inline");
    pool.submit([] {}).get();
    pool.submit([] {}).get();
  }
  EXPECT_EQ(pool.observer(), nullptr);  // detached on scope exit
  EXPECT_EQ(reg.histogram("pool.task_run_seconds", "pool=inline").count(), 2u);
  // Inline execution never queues, so waits are all zero.
  EXPECT_DOUBLE_EQ(
      reg.histogram("pool.task_wait_seconds", "pool=inline").sum(), 0.0);
}

// --- exporter golden files ---------------------------------------------------

// A small deterministic registry: one counter, one gauge, one histogram
// with three fixed observations. The exporters promise byte-stable
// output for this input; these strings are the contract.
void fill_golden(Registry& reg) {
  reg.counter("fw.rounds", "variant=async").add(12);
  reg.gauge("oog.inflight_max").set(3);
  Histogram& h = reg.histogram("mpi.msg_bytes", "coll=ring");
  h.observe(256.0);
  h.observe(1024.0);
  h.observe(1024.0);
}

TEST(ExportGolden, Json) {
  Registry reg;
  fill_golden(reg);
  std::ostringstream os;
  telemetry::to_json(reg, os);
  // p50/p95/p99 all cover the 1024 bucket; the geometric midpoint
  // (2^10.125 ≈ 1116.7) clamps to the observed max.
  const std::string expected =
      "{\"metrics\":[\n"
      "  {\"name\":\"fw.rounds\",\"labels\":{\"variant\":\"async\"},"
      "\"type\":\"counter\",\"value\":12},\n"
      "  {\"name\":\"mpi.msg_bytes\",\"labels\":{\"coll\":\"ring\"},"
      "\"type\":\"histogram\",\"count\":3,\"sum\":2304,\"min\":256,"
      "\"max\":1024,\"p50\":1024,\"p95\":1024,\"p99\":1024},\n"
      "  {\"name\":\"oog.inflight_max\",\"labels\":{},"
      "\"type\":\"gauge\",\"value\":3}\n"
      "]}\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(ExportGolden, Prometheus) {
  Registry reg;
  fill_golden(reg);
  std::ostringstream os;
  telemetry::to_prometheus(reg, os);
  const std::string expected =
      "# TYPE parfw_fw_rounds counter\n"
      "parfw_fw_rounds{variant=\"async\"} 12\n"
      "# TYPE parfw_mpi_msg_bytes summary\n"
      "parfw_mpi_msg_bytes{coll=\"ring\",quantile=\"0.5\"} 1024\n"
      "parfw_mpi_msg_bytes{coll=\"ring\",quantile=\"0.95\"} 1024\n"
      "parfw_mpi_msg_bytes{coll=\"ring\",quantile=\"0.99\"} 1024\n"
      "parfw_mpi_msg_bytes_sum{coll=\"ring\"} 2304\n"
      "parfw_mpi_msg_bytes_count{coll=\"ring\"} 3\n"
      "# TYPE parfw_oog_inflight_max gauge\n"
      "parfw_oog_inflight_max 3\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(ExportGolden, TableMentionsEveryMetric) {
  Registry reg;
  fill_golden(reg);
  const std::string t = telemetry::to_table(reg);
  EXPECT_NE(t.find("fw.rounds"), std::string::npos);
  EXPECT_NE(t.find("variant=async"), std::string::npos);
  EXPECT_NE(t.find("mpi.msg_bytes"), std::string::npos);
  EXPECT_NE(t.find("oog.inflight_max"), std::string::npos);
}

TEST(ExportGolden, JsonRoundTripsThroughSnapshot) {
  // Exporting twice from the same registry yields identical bytes (the
  // round-trip CI artifacts rely on), and dump() dispatches formats.
  Registry reg;
  fill_golden(reg);
  std::ostringstream a, b, none;
  telemetry::to_json(reg, a);
  telemetry::dump(reg, telemetry::ExportFormat::kJson, b);
  EXPECT_EQ(a.str(), b.str());
  telemetry::dump(reg, telemetry::ExportFormat::kNone, none);
  EXPECT_TRUE(none.str().empty());
}

// --- adapters ----------------------------------------------------------------

TEST(Adapters, TrafficStatsPublishUnderDistinctLabels) {
  Registry reg;
  mpi::TrafficStats s;
  s.messages = 7;
  s.bytes_total = 4096;
  s.bytes_internode = 1024;
  telemetry::publish_traffic_stats(reg, s, "scope=run");
  EXPECT_DOUBLE_EQ(reg.gauge("mpi.messages", "scope=run").value(), 7.0);
  EXPECT_DOUBLE_EQ(reg.gauge("mpi.bytes_total", "scope=run").value(), 4096.0);
  // Re-publishing overwrites (snapshot semantics).
  s.bytes_total = 8192;
  telemetry::publish_traffic_stats(reg, s, "scope=run");
  EXPECT_DOUBLE_EQ(reg.gauge("mpi.bytes_total", "scope=run").value(), 8192.0);
}

// --- end-to-end: metrics path vs DES prediction ------------------------------

// The live mpi.send_bytes counter (RuntimeOptions::metrics) must measure
// exactly the wire bytes perf::program_traffic predicts for the same
// schedule — the DesVsReal invariant, re-proven through the METRICS path
// instead of TrafficStats. Two variants × both placements.
class MetricsVsDes
    : public ::testing::TestWithParam<std::tuple<dist::Variant, bool>> {};

TEST_P(MetricsVsDes, SendBytesMatchPrediction) {
  const auto [variant, reordered] = GetParam();
  const std::size_t n = 64, b = 8;
  const dist::GridSpec grid = reordered ? dist::GridSpec::tiled(2, 1, 1, 2)
                                        : dist::GridSpec::row_major(2, 2);
  const int ranks_per_node = 2;

  dist::DistFwOptions opt;
  opt.variant = variant;
  opt.block_size = b;
  if (variant == dist::Variant::kOffload) {
    opt.oog.mx = opt.oog.nx = 2 * b;
    opt.oog.num_streams = 2;
  }

  Registry full_reg;
  mpi::RuntimeOptions ropt;
  ropt.node_model = grid.node_model(ranks_per_node);
  ropt.metrics = &full_reg;
  opt.metrics = &full_reg;

  DenseEntryGen<float> gen(5, 0.9, 1.0f, 80.0f, /*integral=*/true);
  (void)mpi::Runtime::run(
      grid.size(),
      [&](mpi::Comm& world) {
        dist::BlockCyclicMatrix<float> local(n, b, grid,
                                             grid.coord_of(world.rank()));
        local.fill(gen);
        dist::parallel_fw<MinPlus<float>>(world, local, opt);
      },
      ropt);

  Registry split_reg;
  mpi::RuntimeOptions sropt;
  sropt.node_model = ropt.node_model;
  sropt.metrics = &split_reg;
  (void)mpi::Runtime::run(
      grid.size(),
      [&](mpi::Comm& world) { (void)dist::make_row_col_comms(world, grid); },
      sropt);

  perf::FwProblem prob;
  prob.variant = variant;
  prob.n = static_cast<double>(n);
  prob.b = static_cast<double>(b);
  prob.offload_mx = static_cast<double>(2 * b);
  std::vector<int> node_of(static_cast<std::size_t>(grid.size()));
  for (int w = 0; w < grid.size(); ++w)
    node_of[static_cast<std::size_t>(w)] = ropt.node_model.node(w);
  const perf::MachineConfig m = perf::MachineConfig::summit();
  const perf::BuiltProgram built =
      perf::build_fw_program(m, prob, grid, node_of);
  const perf::WireTotals wire =
      perf::program_traffic(built.programs, built.node_of);

  const std::uint64_t measured =
      full_reg.counter("mpi.send_bytes").value() -
      split_reg.counter("mpi.send_bytes").value();
  EXPECT_EQ(measured, static_cast<std::uint64_t>(wire.bytes_total));
  // The live series also carried the per-op phase instrumentation.
  EXPECT_GT(full_reg.counter("mpi.sends").value(), 0u);
  const std::string labels =
      std::string("phase=OuterUpdate,variant=") + dist::variant_name(variant);
  EXPECT_GT(full_reg.histogram("fw.phase.seconds", labels).count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    TwoVariantsBothPlacements, MetricsVsDes,
    ::testing::Combine(::testing::Values(dist::Variant::kAsync,
                                         dist::Variant::kOffload),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<MetricsVsDes::ParamType>& info) {
      return std::string(dist::variant_name(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_tiled" : "_rowmajor");
    });

// --- reconciliation report ---------------------------------------------------

TEST(Reconcile, FlagsExactAndBandViolations) {
  std::map<std::string, sched::StatsTraceSink::OpStats> meas, model;
  meas["DiagUpdate"] = {10, 0, 500.0, 1.0};
  model["DiagUpdate"] = {10, 0, 500.0, 1.0};
  meas["OuterUpdate"] = {20, 0, 8000.0, 3.0};
  model["OuterUpdate"] = {20, 0, 8000.0, 3.0};
  telemetry::ReconcileReport ok =
      telemetry::reconcile(meas, model, 4096, 4096);
  EXPECT_TRUE(ok.ok());
  EXPECT_TRUE(ok.exact_mismatches().empty());

  // Diverging flops on a compute phase -> exact mismatch.
  model["DiagUpdate"].flops = 999.0;
  telemetry::ReconcileReport bad_flops =
      telemetry::reconcile(meas, model, 4096, 4096);
  EXPECT_FALSE(bad_flops.ok());
  ASSERT_EQ(bad_flops.exact_mismatches().size(), 1u);
  EXPECT_EQ(bad_flops.exact_mismatches()[0], "DiagUpdate");
  model["DiagUpdate"].flops = 500.0;

  // Byte divergence fails bytes_match.
  EXPECT_FALSE(telemetry::reconcile(meas, model, 4096, 4097).bytes_match());

  // A share shift past the band is reported out-of-band but not exact:
  // measured shares are 0.25/0.75, modelled become 1/31 and 30/31 — a
  // ~0.22 shift on both phases, past a 0.1 band.
  model["OuterUpdate"].seconds = 30.0;
  telemetry::ReconcileReport shifted =
      telemetry::reconcile(meas, model, 4096, 4096, /*band=*/0.1);
  EXPECT_TRUE(shifted.exact_mismatches().empty());
  EXPECT_FALSE(shifted.out_of_band().empty());
  EXPECT_NE(shifted.table().find("EXACT MATCH"), std::string::npos);
}

}  // namespace
}  // namespace parfw
