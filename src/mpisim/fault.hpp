// Deterministic fault injection for the in-process runtime.
//
// A FaultPlan is installed via RuntimeOptions and drives three message
// fault classes (drop / delay / duplication) plus a one-shot rank crash
// pinned to the global schedule-op order (the sched IR's step index — the
// same coordinate both interpreters share, so "crash at op N" means the
// same point in every replay). Every message-fault decision is a pure
// hash of (seed, flow, sequence number, delivery attempt): the plan
// replays identically across runs, placements and thread interleavings.
//
// Recovery is the runtime's job, not the plan's: World::await simulates
// the sender's retransmission timer (bounded exponential backoff,
// per-message retry budget) and re-drives dropped deliveries, so the
// algorithms above never see a lost message — only latency. Crashes and
// exhausted retry budgets surface as the typed RankFailure below, which
// the dist driver's supervision loop turns into a checkpoint restart.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace parfw::mpi {

struct FaultPlan {
  std::uint64_t seed = 0;  ///< seeds every roll; 0 disables message faults
  double drop_prob = 0.0;  ///< P(one delivery attempt is lost)
  double dup_prob = 0.0;   ///< P(a delivery arrives twice)
  double delay_prob = 0.0; ///< P(a delivery is held back delay_seconds)
  double delay_seconds = 0.002;
  /// One-shot crash: rank `crash_rank` throws RankFailure when it is about
  /// to execute its first schedule op with global step index >= crash_at_op
  /// (injected by the dist::parallel_fw interpreter). -1 disarms.
  int crash_rank = -1;
  std::int64_t crash_at_op = -1;
  /// Straggler injection: rank `slow_rank` sleeps `slow_op_seconds` inside
  /// every schedule op it executes (applied by the dist::parallel_fw
  /// interpreter, within the op's traced span). Results are bit-identical
  /// — only the timeline stretches — which is what makes it the reference
  /// fault for the live monitor's straggler/overrun detection. -1 disarms.
  int slow_rank = -1;
  double slow_op_seconds = 0.0;

  bool message_faults() const {
    return seed != 0 &&
           (drop_prob > 0.0 || dup_prob > 0.0 || delay_prob > 0.0);
  }
  bool crash_armed() const { return crash_rank >= 0 && crash_at_op >= 0; }
  bool slow_armed() const { return slow_rank >= 0 && slow_op_seconds > 0.0; }
  bool any() const {
    return message_faults() || crash_armed() || slow_armed();
  }
};

/// Typed failure of a rank (injected crash, exhausted retry budget, or a
/// peer's death observed through World::abort). The dist driver catches
/// this and restarts from the last coordinated checkpoint.
class RankFailure : public std::runtime_error {
 public:
  RankFailure(int rank, const std::string& what)
      : std::runtime_error(what), rank_(rank) {}
  int rank() const { return rank_; }

 private:
  int rank_;
};

namespace detail {
inline std::uint64_t fault_mix(std::uint64_t z) {
  // splitmix64 finaliser (same generator family as util/rng.hpp).
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace detail

/// Deterministic uniform [0,1) roll for one (flow, seq, salt, attempt)
/// coordinate. `flow` identifies the (context, src, tag, dst) stream.
inline double fault_roll(std::uint64_t seed, std::uint64_t flow,
                         std::uint64_t seq, std::uint64_t salt,
                         std::uint64_t attempt) {
  std::uint64_t h = detail::fault_mix(seed ^ flow);
  h = detail::fault_mix(h ^ (seq * 0xff51afd7ed558ccdull));
  h = detail::fault_mix(h ^ (salt * 0xc4ceb9fe1a85ec53ull) ^ attempt);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

inline constexpr std::uint64_t kFaultSaltDrop = 1;
inline constexpr std::uint64_t kFaultSaltDup = 2;
inline constexpr std::uint64_t kFaultSaltDelay = 3;

}  // namespace parfw::mpi
