// Schedule IR — the single source of truth for every ParallelFw variant's
// control flow (DESIGN.md §2 system #15).
//
// A Schedule is a globally ordered list of per-rank ops: compute phases
// (DiagUpdate / PanelUpdate / Lookahead / OuterUpdate) and collective
// steps (DiagBcast / PanelBcast over the process row or column, tree or
// ring) annotated with tags, roots, block coordinates and flop/byte
// metadata. One generator per variant (build_schedule) emits it; two
// interpreters consume it:
//
//   * dist::parallel_fw — binds each op to real data: SRGEMM calls,
//     mpisim collectives, the devsim/ooGSrGemm path for kOffload;
//   * perf::build_fw_program — lowers each op to DES metadata (seconds
//     from the flop counts, send/recv expansions of the collectives with
//     the same node-aware relay orders mpisim uses).
//
// Restricting a Schedule's global order to one rank yields exactly that
// rank's program order, so both interpreters replay identical per-rank
// op sequences — the property the DES-vs-real cross-validation tests
// pin down. Before this IR existed the two sides maintained the schedule
// by hand in parallel (dist/parallel_fw.hpp vs perf/schedule.cpp) with a
// comment promising they "mirror exactly"; now there is nothing to
// mirror.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "dist/grid.hpp"
#include "sched/variant.hpp"
#include "util/check.hpp"

namespace parfw::sched {

// --- tag space ---------------------------------------------------------------
//
// The per-iteration tag space is owned HERE, by the IR: every interpreter
// and every auxiliary schedule (e.g. the predecessor-carrying FW) derives
// its tags from tag_of, so concurrent iterations' collectives (the ring
// broadcast of iteration k+1 overlaps iteration k's) can never
// cross-match. kTagsPerIter tags are reserved per iteration; phases are
// the indices below.

inline constexpr int kTagDiagRow = 0;       ///< DiagBcast across the row
inline constexpr int kTagDiagCol = 1;       ///< DiagBcast down the column
inline constexpr int kTagRowPanel = 2;      ///< row PanelBcast (down columns)
inline constexpr int kTagColPanel = 3;      ///< col PanelBcast (across rows)
inline constexpr int kTagDiagPredRow = 4;   ///< paths: diag predecessors, row
inline constexpr int kTagDiagPredCol = 5;   ///< paths: diag predecessors, col
inline constexpr int kTagRowPanelPred = 6;  ///< paths: row-panel predecessors
inline constexpr int kTagsPerIter = 8;
/// Offset keeping schedule tags clear of the small negative/positive tags
/// the communicator layer uses internally (split, reductions, gathers).
inline constexpr std::int32_t kTagBase = 1000;

/// Injective map (k, phase) -> tag. Injectivity over distinct iterations
/// is what makes overlapping ring broadcasts safe; sched_test proves it.
constexpr std::int32_t tag_of(std::size_t k, int phase) {
  return kTagBase +
         static_cast<std::int32_t>(kTagsPerIter * k +
                                   static_cast<std::size_t>(phase));
}

// --- ops ---------------------------------------------------------------------

enum class OpKind : std::uint8_t {
  kDiagUpdate,      ///< close A(k,k) in place (owner rank only)
  kDiagBcastRow,    ///< broadcast closed A(k,k) across the owner's row
  kDiagBcastCol,    ///< broadcast closed A(k,k) down the owner's column
  kPanelUpdateRow,  ///< A(k,:) <- A(k,:) ⊕ akk ⊗ A(k,:)  (k-th process row)
  kPanelUpdateCol,  ///< A(:,k) <- A(:,k) ⊕ A(:,k) ⊗ akk  (k-th process col)
  kRowPanelBcast,   ///< broadcast the row panel down the process columns
  kColPanelBcast,   ///< broadcast the col panel across the process rows
  kLookaheadRow,    ///< OuterUpdate(k) restricted to the (k+1) row strip
  kLookaheadCol,    ///< OuterUpdate(k) restricted to the (k+1) col strip
  kOuterUpdate,     ///< bulk OuterUpdate(k) on the whole local matrix
  kCheckpoint,      ///< coordinated snapshot cut before iteration k
};

inline const char* op_name(OpKind kind) {
  switch (kind) {
    case OpKind::kDiagUpdate: return "DiagUpdate";
    case OpKind::kDiagBcastRow: return "DiagBcastRow";
    case OpKind::kDiagBcastCol: return "DiagBcastCol";
    case OpKind::kPanelUpdateRow: return "PanelUpdateRow";
    case OpKind::kPanelUpdateCol: return "PanelUpdateCol";
    case OpKind::kRowPanelBcast: return "RowPanelBcast";
    case OpKind::kColPanelBcast: return "ColPanelBcast";
    case OpKind::kLookaheadRow: return "LookaheadRow";
    case OpKind::kLookaheadCol: return "LookaheadCol";
    case OpKind::kOuterUpdate: return "OuterUpdate";
    case OpKind::kCheckpoint: return "Checkpoint";
  }
  return "?";
}

inline bool is_comm(OpKind kind) {
  switch (kind) {
    case OpKind::kDiagBcastRow:
    case OpKind::kDiagBcastCol:
    case OpKind::kRowPanelBcast:
    case OpKind::kColPanelBcast: return true;
    default: return false;
  }
}
inline bool is_comp(OpKind kind) { return !is_comm(kind); }

/// Collective algorithm of a comm op (§3.3: tree for latency-bound
/// DiagBcast, ring for bandwidth-bound PanelBcast in kAsync).
enum class CollKind : std::uint8_t { kNone, kTree, kRing };

/// What tile a comm op moves. A schedule built with pred_word_bytes > 0
/// emits a kPred companion op (same kind/coll/root, its own tag from the
/// pred phase space) right after each value broadcast whose tile has a
/// predecessor sibling — the diag block (row + column) and the row panel.
/// The column panel has no pred sibling: the pred-FW rule only ever reads
/// predecessors from the pivot BLOCK ROW (pred(i,j) ← pred(k-row t, j)).
enum class Payload : std::uint8_t { kValue, kPred };

struct Op {
  OpKind kind = OpKind::kOuterUpdate;
  std::uint32_t k = 0;               ///< FW iteration this op belongs to
  CollKind coll = CollKind::kNone;   ///< comm ops: collective algorithm
  Payload payload = Payload::kValue; ///< comm ops: tile contents
  std::int32_t tag = 0;              ///< comm ops: match tag (tag_of)
  std::int32_t root = -1;            ///< comm ops: root's LOCAL rank in scope
  std::int64_t bytes = 0;            ///< comm ops: payload bytes per member
  double flops = 0.0;                ///< compute ops: arithmetic work
  bool offload = false;              ///< kOuterUpdate: stream via ooGSrGemm
};

/// One schedule entry: op to be executed by `rank` (world rank).
struct Step {
  std::int32_t rank = 0;
  Op op;
};

/// A generated schedule. `steps` is in global generation order; the
/// subsequence with steps[i].rank == w is rank w's program, in order.
struct Schedule {
  Variant variant = Variant::kBaseline;
  std::size_t nb = 0;  ///< blocks per matrix dimension
  std::size_t b = 0;   ///< block size
  int pr = 0, pc = 0;  ///< process grid shape
  std::vector<Step> steps;

  /// Rank w's ops, in program order (convenience for interpreters that
  /// want a materialised per-rank view).
  std::vector<Op> rank_program(int w) const {
    std::vector<Op> out;
    for (const Step& s : steps)
      if (s.rank == w) out.push_back(s.op);
    return out;
  }
};

/// Observer of schedule materialisation — the second half of the live-
/// monitoring seam (the first is TraceSink). The data-carrying
/// interpreter calls on_schedule from EVERY rank thread right after that
/// rank built its Schedule and before it executes any step, so an
/// observer that also receives the rank's trace events is guaranteed to
/// know the schedule before the rank's first op event arrives (the
/// observer's own synchronisation orders the calls). All ranks hand over
/// the identical Schedule; implementations must tolerate the repeated,
/// concurrent calls (src/monitor/ RunMonitor adopts the first).
class ScheduleObserver {
 public:
  virtual ~ScheduleObserver() = default;
  virtual void on_schedule(const Schedule& s) = 0;
};

struct ScheduleParams {
  Variant variant = Variant::kBaseline;
  std::size_t nb = 0;          ///< blocks per dimension (n / b)
  std::size_t b = 0;           ///< block size
  std::size_t word_bytes = 4;  ///< sizeof one matrix element
  /// sizeof one predecessor id; 0 = distances only. Non-zero turns on the
  /// payload-generic schedule: kPred companion broadcasts for the diag
  /// block and the row panel, checkpoint footprints covering both tiles.
  std::size_t pred_word_bytes = 0;
  double diag_flops = 0.0;     ///< cost metadata for one DiagUpdate
  /// Resume support: first pivot iteration to EXECUTE. A schedule built
  /// with start_k > 0 assumes the matrix state already reflects all
  /// iterations < start_k (a loaded checkpoint); the pipelined/async
  /// generators re-emit the prologue (Diag/Panel/Bcast of start_k) so the
  /// panel buffers — which are never checkpointed — are regenerated.
  /// Re-running those closed-panel updates is a bit-identical no-op under
  /// the idempotent ⊕ (same argument as the in-place PanelUpdate).
  std::size_t start_k = 0;
  /// Emit a coordinated kCheckpoint cut (one op per rank) before every
  /// iteration k with k % checkpoint_every == 0 and k > start_k. 0 = off.
  /// Cuts sit at points where all collectives of iterations < k are
  /// complete on every rank, so the tiles alone define the remaining work.
  std::size_t checkpoint_every = 0;

  /// Two parameter sets are equal iff build_schedule is guaranteed to
  /// emit the same Schedule for them on any given grid — the contract
  /// memoization keys (the tuner's DES evaluation cache) rely on.
  friend bool operator==(const ScheduleParams& a, const ScheduleParams& b) {
    return a.variant == b.variant && a.nb == b.nb && a.b == b.b &&
           a.word_bytes == b.word_bytes &&
           a.pred_word_bytes == b.pred_word_bytes &&
           a.diag_flops == b.diag_flops && a.start_k == b.start_k &&
           a.checkpoint_every == b.checkpoint_every;
  }
  friend bool operator!=(const ScheduleParams& a, const ScheduleParams& b) {
    return !(a == b);
  }
};

/// Order-dependent 64-bit hash combiner (splitmix-style mixing), shared
/// by every cache that keys on schedule configurations.
inline std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdull;
  return h ^ (h >> 33);
}

/// Hash consistent with ScheduleParams::operator== (equal params hash
/// equal). diag_flops participates through its bit pattern — the value is
/// computed, not measured, so bit-equality is the right granularity.
inline std::uint64_t hash_of(const ScheduleParams& p) {
  std::uint64_t df;
  static_assert(sizeof df == sizeof p.diag_flops);
  std::memcpy(&df, &p.diag_flops, sizeof df);
  std::uint64_t h = 0x853c49e6748fea9bull;
  h = hash_combine(h, static_cast<std::uint64_t>(p.variant));
  h = hash_combine(h, p.nb);
  h = hash_combine(h, p.b);
  h = hash_combine(h, p.word_bytes);
  h = hash_combine(h, p.pred_word_bytes);
  h = hash_combine(h, df);
  h = hash_combine(h, p.start_k);
  h = hash_combine(h, p.checkpoint_every);
  return h;
}

/// Generate the schedule for one variant on one placement. The grid IS
/// the placement parameter: pass a GridSpec::tiled grid and +Reordering
/// falls out of the same generator.
Schedule build_schedule(const dist::GridSpec& grid, const ScheduleParams& p);

/// Metadata totals of a schedule. payload_bytes sums each comm op's
/// per-member payload (NOT wire bytes — collective expansion decides how
/// many times a payload crosses links; see perf::program_traffic).
struct ScheduleTotals {
  double flops = 0.0;
  std::int64_t payload_bytes = 0;
  std::size_t comp_ops = 0;
  std::size_t comm_ops = 0;
};
ScheduleTotals totals(const Schedule& s);

}  // namespace parfw::sched
