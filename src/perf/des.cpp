#include "perf/des.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <queue>
#include <unordered_map>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace parfw::perf {

namespace {

/// Match key for in-flight messages: (src, dst, tag) packed into disjoint
/// bit fields (20 + 20 + 24 bits — ranks < 1M, tags < 16M).
inline std::uint64_t msg_key(int src, int dst, std::int32_t tag) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 44) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 24) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)) &
          0xFFFFFFull);
}

}  // namespace

SimStats simulate(const std::vector<RankProgram>& programs,
                  const std::vector<int>& node_of, const MachineConfig& m,
                  sched::TraceSink* trace) {
  auto op_label = [](const Op& op) -> const char* {
    if (op.kind_src >= 0)
      return sched::op_name(static_cast<sched::OpKind>(op.kind_src));
    switch (op.kind) {
      case Op::Kind::kComp: return "comp";
      case Op::Kind::kSend: return "send";
      case Op::Kind::kRecv: return "recv";
    }
    return "?";
  };
  const int P = static_cast<int>(programs.size());
  PARFW_CHECK(static_cast<int>(node_of.size()) == P);

  int num_nodes = 0;
  for (int w = 0; w < P; ++w)
    num_nodes = std::max(num_nodes, node_of[static_cast<std::size_t>(w)] + 1);
  const int num_gpus = (P + m.ranks_per_gpu - 1) / m.ranks_per_gpu;

  std::vector<double> clock(static_cast<std::size_t>(P), 0.0);
  std::vector<std::size_t> pc(static_cast<std::size_t>(P), 0);
  std::vector<double> gpu_free(static_cast<std::size_t>(num_gpus), 0.0);
  std::vector<double> nic_out(static_cast<std::size_t>(num_nodes), 0.0);
  std::vector<double> nic_in(static_cast<std::size_t>(num_nodes), 0.0);
  std::vector<double> nic_bytes(static_cast<std::size_t>(num_nodes), 0.0);

  std::unordered_map<std::uint64_t, std::deque<double>> arrivals;
  std::unordered_map<std::uint64_t, std::vector<int>> waiters;
  std::uint64_t send_counter = 0;
  // Per-(src, dst, tag) FIFO ordinals. Sends execute in program order and
  // arrivals are consumed in FIFO order, so numbering sends and recvs of
  // one flow independently pairs them exactly — the same (ctx=0, src,
  // dst, tag, seq) coordinate the mpisim runtime stamps, letting the
  // causal layer join DES traces with the identical machinery.
  std::unordered_map<std::uint64_t, std::uint64_t> send_seq, recv_seq;

  using HeapItem = std::pair<double, int>;  // (clock, rank)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> ready;
  for (int w = 0; w < P; ++w)
    if (!programs[static_cast<std::size_t>(w)].empty()) ready.emplace(0.0, w);

  SimStats stats;
  std::size_t done_ranks = 0;
  for (int w = 0; w < P; ++w)
    if (programs[static_cast<std::size_t>(w)].empty()) ++done_ranks;

  while (!ready.empty()) {
    const auto [t_key, w] = ready.top();
    ready.pop();
    const std::size_t ws = static_cast<std::size_t>(w);
    if (pc[ws] >= programs[ws].size()) continue;       // stale heap entry
    if (t_key < clock[ws]) {                           // stale clock
      ready.emplace(clock[ws], w);
      continue;
    }

    const Op& op = programs[ws][pc[ws]];
    switch (op.kind) {
      case Op::Kind::kComp: {
        const int gpu = w / m.ranks_per_gpu;
        const double start = std::max(clock[ws], gpu_free[static_cast<std::size_t>(gpu)]);
        const double end = start + op.seconds;
        clock[ws] = end;
        gpu_free[static_cast<std::size_t>(gpu)] = end;
        stats.total_comp_seconds += op.seconds;
        if (trace)
          trace->record(sched::TraceEvent{w, op_label(op), op.k, start, end,
                                          op.bytes, op.flops});
        ++pc[ws];
        break;
      }
      case Op::Kind::kSend: {
        const double t_send = clock[ws];
        const int src_node = node_of[ws];
        const int dst_node = node_of[static_cast<std::size_t>(op.peer)];
        double arrival;
        if (src_node == dst_node) {
          const double dur = static_cast<double>(op.bytes) / m.intranode_bw;
          const double start = clock[ws];
          clock[ws] = start + dur;
          arrival = start + m.intranode_latency + dur;
        } else {
          double dur = static_cast<double>(op.bytes) / m.nic_bw;
          if (m.net_jitter > 0.0 && dur > 0.0) {
            // Deterministic congestion noise per transfer.
            std::uint64_t h = 0x9e3779b97f4a7c15ull * (++send_counter) ^
                              (static_cast<std::uint64_t>(w) << 32);
            const double u = static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;
            dur *= 1.0 + m.net_jitter * u;
          }
          const double start =
              std::max(clock[ws], nic_out[static_cast<std::size_t>(src_node)]);
          nic_out[static_cast<std::size_t>(src_node)] = start + dur;
          clock[ws] = start + dur;
          // Ingress: the flow re-serialises on the destination NIC.
          const double in_start = std::max(start + m.wire_latency,
                                           nic_in[static_cast<std::size_t>(dst_node)]);
          arrival = in_start + dur;
          nic_in[static_cast<std::size_t>(dst_node)] = arrival;
          stats.internode_bytes += static_cast<double>(op.bytes);
          nic_bytes[static_cast<std::size_t>(src_node)] += static_cast<double>(op.bytes);
          nic_bytes[static_cast<std::size_t>(dst_node)] += static_cast<double>(op.bytes);
        }
        const std::uint64_t key = msg_key(w, op.peer, op.tag);
        if (trace) {
          sched::TraceEvent e{w, op_label(op), op.k, t_send,
                              clock[ws],     op.bytes,     0.0};
          e.ek = sched::EventKind::kSend;
          e.peer = op.peer;
          e.tag = op.tag;
          e.seq = send_seq[key]++;
          trace->record(e);
        }
        arrivals[key].push_back(arrival);
        // Wake anyone blocked on this key.
        auto it = waiters.find(key);
        if (it != waiters.end()) {
          for (int blocked : it->second)
            ready.emplace(clock[static_cast<std::size_t>(blocked)], blocked);
          waiters.erase(it);
        }
        ++pc[ws];
        break;
      }
      case Op::Kind::kRecv: {
        const std::uint64_t key = msg_key(op.peer, w, op.tag);
        auto it = arrivals.find(key);
        if (it == arrivals.end() || it->second.empty()) {
          waiters[key].push_back(w);
          continue;  // blocked: re-queued when the send executes
        }
        // Wait span: the rank's clock froze when it first reached this
        // recv; the message edge explains [t_wait, arrival]. Named "recv"
        // (not the IR op label) so modelled per-phase time tables keep
        // counting each comm op once — its send span carries the label.
        const double t_wait = clock[ws];
        clock[ws] = std::max(clock[ws], it->second.front());
        it->second.pop_front();
        if (it->second.empty()) arrivals.erase(it);
        if (trace) {
          sched::TraceEvent e{w,         "recv",   op.k, t_wait,
                              clock[ws], op.bytes, 0.0};
          e.ek = sched::EventKind::kRecv;
          e.peer = op.peer;
          e.tag = op.tag;
          e.seq = recv_seq[key]++;
          trace->record(e);
        }
        ++pc[ws];
        break;
      }
    }
    ++stats.ops_executed;
    if (pc[ws] >= programs[ws].size()) {
      ++done_ranks;
      stats.makespan = std::max(stats.makespan, clock[ws]);
    } else {
      ready.emplace(clock[ws], w);
    }
  }

  PARFW_CHECK_MSG(done_ranks == static_cast<std::size_t>(P),
                  "simulation deadlock: " << (P - static_cast<int>(done_ranks))
                                          << " ranks blocked");
  for (double v : nic_bytes) stats.max_nic_bytes = std::max(stats.max_nic_bytes, v);
  return stats;
}

}  // namespace parfw::perf
