// Sharded serving: one PathService per mpisim rank, queries routed to
// the rank that owns the first tile they touch (DESIGN.md §4.12).
//
// The manifest's block-cyclic owner map already names, for every global
// block (I, J), the world rank whose blob holds it — the same mapping
// the solver used. A query (src, dst) is answered entirely along block
// row src/b (its distance tile AND every pred tile of the walk live in
// block row src/b), so routing it to owner(src/b, dst/b) sends it to the
// rank whose blob holds the first — and hottest — tile it touches; each
// rank's cache then specialises to its shard of the key space. Results
// travel to world rank 0, which reassembles them in request order.
//
// Every rank must call sharded_answer with the same batch (SPMD, like
// every collective in this codebase); the serving world size must equal
// the manifest's. The return value is the full in-order result vector on
// rank 0 and empty elsewhere.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpisim/communicator.hpp"
#include "sched/trace.hpp"
#include "serve/path_service.hpp"
#include "serve/qtrace.hpp"
#include "util/check.hpp"

namespace parfw::serve {

namespace detail {
inline constexpr mpi::tag_t kTagServeMeta = 7300;
inline constexpr mpi::tag_t kTagServeDist = 7301;
}  // namespace detail

template <typename S>
std::vector<QueryResult<typename S::value_type>> sharded_answer(
    mpi::Comm& world, const CheckpointStore& store, const QueryBatch& batch,
    ServeOptions opt = {}) {
  using T = typename S::value_type;
  if (opt.metric_labels.empty())
    opt.metric_labels = "rank=" + std::to_string(world.rank());
  opt.trace_rank = world.rank();
  PathService<S> service(store, opt);
  QueryTracer& tracer = service.tracer();
  const ServeManifest& m = service.manifest();
  PARFW_CHECK_MSG(world.size() == static_cast<int>(m.world_size()),
                  "serving world size " << world.size()
                                        << " != manifest world size "
                                        << m.world_size());
  const std::uint64_t b = m.block_size();

  // Answer the shard routed to this rank. Serialise to a flat int64
  // stream [index, status, path_len, path...] plus a distance array —
  // lengths first so rank 0 can size its receives.
  std::vector<std::int64_t> meta;
  std::vector<T> dists;
  tracer.begin_batch();
  for (std::size_t i = 0; i < batch.pairs.size(); ++i) {
    const PathQuery& q = batch.pairs[i];
    const int owner = m.owner_of(static_cast<std::uint64_t>(q.src) / b,
                                 static_cast<std::uint64_t>(q.dst) / b);
    if (owner != world.rank()) continue;
    // The batch index is the query id, so a query's spans carry the same
    // k on whichever rank's track ends up answering it.
    QueryResult<T> r = service.query(q.src, q.dst, batch.want_paths,
                                     static_cast<std::int64_t>(i));
    meta.push_back(static_cast<std::int64_t>(i));
    meta.push_back(static_cast<std::int64_t>(r.status));
    meta.push_back(static_cast<std::int64_t>(r.path.size()));
    meta.insert(meta.end(), r.path.begin(), r.path.end());
    dists.push_back(r.distance);
  }
  tracer.publish_tile_costs();

  if (world.rank() != 0) {
    const std::int64_t bytes =
        static_cast<std::int64_t>(meta.size() * sizeof(std::int64_t) +
                                  dists.size() * sizeof(T));
    const double t_send = sched::now_seconds();
    world.send_value(std::uint64_t{meta.size()}, 0, detail::kTagServeMeta);
    if (!meta.empty())
      world.send(std::span<const std::int64_t>(meta), 0,
                 detail::kTagServeMeta);
    if (!dists.empty())
      world.send(std::span<const T>(dists), 0, detail::kTagServeDist);
    tracer.emit_handoff(sched::EventKind::kSend, /*peer=*/0, bytes, t_send,
                        sched::now_seconds());
    return {};
  }

  std::vector<QueryResult<T>> out(batch.pairs.size());
  auto unpack = [&](const std::vector<std::int64_t>& mv,
                    const std::vector<T>& dv) {
    std::size_t d = 0;
    for (std::size_t p = 0; p < mv.size();) {
      const auto idx = static_cast<std::size_t>(mv[p]);
      QueryResult<T>& r = out[idx];
      r.status = static_cast<PathStatus>(mv[p + 1]);
      const auto len = static_cast<std::size_t>(mv[p + 2]);
      r.path.assign(mv.begin() + static_cast<std::ptrdiff_t>(p + 3),
                    mv.begin() + static_cast<std::ptrdiff_t>(p + 3 + len));
      r.distance = dv[d++];
      p += 3 + len;
    }
  };
  unpack(meta, dists);
  const double t_gather = sched::now_seconds();
  std::int64_t gather_bytes = 0;
  for (int src = 1; src < world.size(); ++src) {
    const double t_recv = sched::now_seconds();
    const auto meta_len =
        world.recv_value<std::uint64_t>(src, detail::kTagServeMeta);
    std::vector<std::int64_t> peer_meta(meta_len);
    if (meta_len > 0)
      world.recv(std::span<std::int64_t>(peer_meta), src,
                 detail::kTagServeMeta);
    std::size_t results = 0;
    for (std::size_t p = 0; p < peer_meta.size();
         p += 3 + static_cast<std::size_t>(peer_meta[p + 2]))
      ++results;
    std::vector<T> peer_dists(results);
    if (results > 0)
      world.recv(std::span<T>(peer_dists), src, detail::kTagServeDist);
    const std::int64_t bytes =
        static_cast<std::int64_t>(peer_meta.size() * sizeof(std::int64_t) +
                                  peer_dists.size() * sizeof(T));
    tracer.emit_handoff(sched::EventKind::kRecv, src, bytes, t_recv,
                        sched::now_seconds());
    gather_bytes += bytes;
    unpack(peer_meta, peer_dists);
  }
  tracer.record_gather(t_gather, sched::now_seconds(), gather_bytes);
  return out;
}

}  // namespace parfw::serve
