#include "graph/io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace parfw::io {

namespace {
/// Next line that is neither blank nor a '#' comment; false at EOF.
bool next_content_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    std::size_t i = line.find_first_not_of(" \t\r");
    if (i == std::string::npos) continue;
    if (line[i] == '#') continue;
    return true;
  }
  return false;
}
}  // namespace

Graph read_edge_list(std::istream& in) {
  std::string line;
  PARFW_CHECK_MSG(next_content_line(in, line), "edge list: missing header");
  std::istringstream header(line);
  vertex_t n = 0;
  std::size_t m = 0;
  PARFW_CHECK_MSG(static_cast<bool>(header >> n >> m),
                  "edge list: bad header '" << line << "'");
  Graph g(n);
  for (std::size_t e = 0; e < m; ++e) {
    PARFW_CHECK_MSG(next_content_line(in, line),
                    "edge list: expected " << m << " edges, got " << e);
    std::istringstream es(line);
    vertex_t src = 0, dst = 0;
    double w = 0;
    PARFW_CHECK_MSG(static_cast<bool>(es >> src >> dst >> w),
                    "edge list: bad edge line '" << line << "'");
    g.add_edge(src, dst, w);
  }
  return g;
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  PARFW_CHECK_MSG(in.good(), "cannot open '" << path << "'");
  return read_edge_list(in);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << std::setprecision(17);  // round-trip exact for double weights
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges())
    out << e.src << ' ' << e.dst << ' ' << e.weight << '\n';
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  PARFW_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  write_edge_list(g, out);
}

Graph read_dimacs(std::istream& in) {
  std::string line;
  vertex_t n = -1;
  std::vector<Edge> edges;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 'c') continue;
    if (tag == 'p') {
      std::string kind;
      std::size_t m = 0;
      PARFW_CHECK_MSG(static_cast<bool>(ls >> kind >> n >> m),
                      "dimacs: bad problem line '" << line << "'");
      edges.reserve(m);
    } else if (tag == 'a') {
      vertex_t src = 0, dst = 0;
      double w = 0;
      PARFW_CHECK_MSG(static_cast<bool>(ls >> src >> dst >> w),
                      "dimacs: bad arc line '" << line << "'");
      PARFW_CHECK_MSG(n > 0, "dimacs: arc before problem line");
      edges.push_back(Edge{src - 1, dst - 1, w});  // DIMACS is 1-based
    }
  }
  PARFW_CHECK_MSG(n >= 0, "dimacs: no problem line");
  return Graph(n, std::move(edges));
}

void write_dimacs(const Graph& g, std::ostream& out) {
  out << std::setprecision(17);
  out << "p sp " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges())
    out << "a " << (e.src + 1) << ' ' << (e.dst + 1) << ' ' << e.weight << '\n';
}

}  // namespace parfw::io
