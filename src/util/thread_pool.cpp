#include "util/thread_pool.hpp"

#include <algorithm>

namespace parfw {

ThreadPool::ThreadPool(std::size_t n_threads) {
  threads_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    std::size_t depth;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      depth = queue_.size();
    }
    if (PoolObserver* obs = observer()) obs->on_queue_depth(depth);
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = std::max<std::size_t>(1, size());
  if (workers == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min(workers, n);
  const std::size_t per = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(n, lo + per);
    if (lo >= hi) break;
    futs.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futs) f.get();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace parfw
