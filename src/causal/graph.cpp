#include "causal/graph.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <limits>
#include <map>
#include <tuple>

namespace parfw::causal {

namespace {

/// Channel coordinate of a kSend/kRecv event (send's rank/peer is the
/// recv's peer/rank).
struct ChannelKey {
  std::uint64_t ctx;
  int src;
  int dst;
  std::int32_t tag;
  std::uint64_t seq;
  bool operator<(const ChannelKey& o) const {
    return std::tie(ctx, src, dst, tag, seq) <
           std::tie(o.ctx, o.src, o.dst, o.tag, o.seq);
  }
};

ChannelKey channel_of(const sched::TraceEvent& e) {
  if (e.ek == sched::EventKind::kSend)
    return ChannelKey{e.ctx, e.rank, static_cast<int>(e.peer), e.tag, e.seq};
  return ChannelKey{e.ctx, static_cast<int>(e.peer), e.rank, e.tag, e.seq};
}

}  // namespace

Graph build_graph(std::vector<sched::TraceEvent> events, BuildStats* stats) {
  Graph g;
  g.events = std::move(events);
  const int n = static_cast<int>(g.events.size());
  g.node_time.resize(static_cast<std::size_t>(2 * n));
  g.t_min = n > 0 ? std::numeric_limits<double>::max() : 0.0;
  g.t_max = 0.0;
  for (int e = 0; e < n; ++e) {
    const sched::TraceEvent& ev = g.events[static_cast<std::size_t>(e)];
    g.node_time[static_cast<std::size_t>(Graph::begin_node(e))] = ev.t_begin;
    g.node_time[static_cast<std::size_t>(Graph::end_node(e))] = ev.t_end;
    g.t_min = std::min(g.t_min, ev.t_begin);
    g.t_max = std::max(g.t_max, ev.t_end);
  }

  auto add_edge = [&](int from, int to, EdgeType type) {
    g.edges.push_back(Edge{from, to, type});
  };

  // Span interiors.
  for (int e = 0; e < n; ++e)
    add_edge(Graph::begin_node(e), Graph::end_node(e), EdgeType::kSpan);

  // Per-rank program order as a nesting forest. Sort each rank's events
  // by (begin, record index) — the record index breaks ties so that an
  // instant recorded inside a span that starts at the same timestamp
  // nests under it rather than preceding it.
  std::map<int, std::vector<int>> by_rank;
  for (int e = 0; e < n; ++e)
    by_rank[g.events[static_cast<std::size_t>(e)].rank].push_back(e);
  for (auto& [rank, idx] : by_rank) {
    (void)rank;
    std::stable_sort(idx.begin(), idx.end(), [&](int a, int b) {
      return g.events[static_cast<std::size_t>(a)].t_begin <
             g.events[static_cast<std::size_t>(b)].t_begin;
    });
    struct Frame {
      int event;
      int last_child = -1;  ///< most recently closed child (or -1)
    };
    std::vector<Frame> stack;
    int last_top = -1;  ///< most recently closed top-level event
    auto pop_one = [&] {
      const Frame closed = stack.back();
      stack.pop_back();
      // The last thing to finish inside the closed span gates its end.
      if (closed.last_child != -1)
        add_edge(Graph::end_node(closed.last_child),
                 Graph::end_node(closed.event), EdgeType::kProgram);
      if (stack.empty())
        last_top = closed.event;
      else
        stack.back().last_child = closed.event;
    };
    for (int e : idx) {
      const double t = g.events[static_cast<std::size_t>(e)].t_begin;
      while (!stack.empty() &&
             g.events[static_cast<std::size_t>(stack.back().event)].t_end <=
                 t)
        pop_one();
      if (stack.empty()) {
        if (last_top != -1)
          add_edge(Graph::end_node(last_top), Graph::begin_node(e),
                   EdgeType::kProgram);
      } else if (stack.back().last_child != -1) {
        add_edge(Graph::end_node(stack.back().last_child),
                 Graph::begin_node(e), EdgeType::kProgram);
      } else {
        add_edge(Graph::begin_node(stack.back().event), Graph::begin_node(e),
                 EdgeType::kProgram);
      }
      stack.push_back(Frame{e, -1});
    }
    while (!stack.empty()) pop_one();
  }

  // Message edges: end(send) -> end(recv), joined by channel coordinate.
  // A duplicate-discarded delivery never produces a second recv event, so
  // the map stays 1:1. Retransmitted messages keep their original seq, so
  // several send events can share one channel key; the EARLIEST attempt is
  // the causal anchor — a later retransmit may race past the ack and fire
  // after the recv already completed, and anchoring there would put a
  // backwards edge (and potentially a cycle) into the graph.
  std::map<ChannelKey, int> send_of;
  std::size_t unmatched_sends = 0;
  for (int e = 0; e < n; ++e)
    if (g.events[static_cast<std::size_t>(e)].ek == sched::EventKind::kSend) {
      auto [it, inserted] = send_of.emplace(
          channel_of(g.events[static_cast<std::size_t>(e)]), e);
      if (!inserted &&
          g.events[static_cast<std::size_t>(e)].t_end <
              g.events[static_cast<std::size_t>(it->second)].t_end)
        it->second = e;
      ++unmatched_sends;
    }
  std::size_t matched = 0, unmatched_recvs = 0;
  for (int e = 0; e < n; ++e) {
    if (g.events[static_cast<std::size_t>(e)].ek != sched::EventKind::kRecv)
      continue;
    auto it = send_of.find(channel_of(g.events[static_cast<std::size_t>(e)]));
    if (it == send_of.end()) {
      ++unmatched_recvs;
      continue;
    }
    add_edge(Graph::end_node(it->second), Graph::end_node(e),
             EdgeType::kMessage);
    ++matched;
    --unmatched_sends;
  }

  // Checkpoint barrier joins, one synthetic node per iteration cut.
  std::map<std::uint32_t, std::vector<int>> cuts;
  for (int e = 0; e < n; ++e) {
    const sched::TraceEvent& ev = g.events[static_cast<std::size_t>(e)];
    if (std::strcmp(ev.name, "Checkpoint") == 0) cuts[ev.k].push_back(e);
  }
  std::size_t joins = 0;
  for (const auto& [k, members] : cuts) {
    (void)k;
    if (members.size() < 2) continue;
    double t_join = 0.0;
    for (int e : members)
      t_join = std::max(t_join,
                        g.events[static_cast<std::size_t>(e)].t_begin);
    const int join = g.num_nodes();
    g.node_time.push_back(t_join);
    for (int e : members) {
      add_edge(Graph::begin_node(e), join, EdgeType::kJoin);
      add_edge(join, Graph::end_node(e), EdgeType::kJoin);
    }
    ++joins;
  }

  g.preds.assign(static_cast<std::size_t>(g.num_nodes()), {});
  g.succs.assign(static_cast<std::size_t>(g.num_nodes()), {});
  for (int i = 0; i < static_cast<int>(g.edges.size()); ++i) {
    g.preds[static_cast<std::size_t>(g.edges[static_cast<std::size_t>(i)].to)]
        .push_back(i);
    g.succs[static_cast<std::size_t>(
                g.edges[static_cast<std::size_t>(i)].from)]
        .push_back(i);
  }

  if (stats != nullptr) {
    stats->matched_messages = matched;
    stats->unmatched_sends = unmatched_sends;
    stats->unmatched_recvs = unmatched_recvs;
    stats->joins = joins;
  }
  return g;
}

bool topo_order(const Graph& g, std::vector<int>* order) {
  const int n = g.num_nodes();
  std::vector<int> indeg(static_cast<std::size_t>(n), 0);
  for (const Edge& e : g.edges) ++indeg[static_cast<std::size_t>(e.to)];
  std::deque<int> ready;
  for (int v = 0; v < n; ++v)
    if (indeg[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
  order->clear();
  order->reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const int v = ready.front();
    ready.pop_front();
    order->push_back(v);
    for (int ei : g.succs[static_cast<std::size_t>(v)]) {
      const int to = g.edges[static_cast<std::size_t>(ei)].to;
      if (--indeg[static_cast<std::size_t>(to)] == 0) ready.push_back(to);
    }
  }
  return static_cast<int>(order->size()) == n;
}

}  // namespace parfw::causal
