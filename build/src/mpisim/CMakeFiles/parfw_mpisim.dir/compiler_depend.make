# Empty compiler generated dependencies file for parfw_mpisim.
# This may be replaced when dependencies are built.
