// sched_tune — search the schedule-configuration space in the DES.
//
// Runs the causal-feedback autotuner (src/tune/, DESIGN.md §4.10) for one
// workload: every candidate — variant × rank placement × block size ×
// offload buffer depth — is costed by perf::build_fw_program +
// perf::simulate, blame-attributed through src/causal/, and the search is
// seeded/pruned by that attribution. Prints the tuning report; optionally
// persists the winner into a manifest (the PARFW_TUNE_CACHE format),
// emits google-benchmark JSON rows for scripts/bench_compare.py, and
// cross-checks the winner against a REAL mpisim run: the live
// mpi.send_bytes counter must equal perf::program_traffic's prediction
// for the winning schedule EXACTLY (the DesVsReal invariant).
//
// Usage:
//   sched_tune --n N --ranks P [--rpn R] [--word-bytes W]
//              [--stall-weight S] [--refine K]
//              [--blocks B1,B2,...]        restrict the block dimension
//              [--manifest FILE]           consult first, persist winner
//              [--force]                   re-tune even on a manifest hit
//              [--bench-json FILE]         tune/* rows (BENCH_tune.json)
//              [--validate]                real-run wire-byte cross-check
//
// Exit status: 0 ok; 1 tuning/validation failure; 2 usage error.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dist/block_cyclic.hpp"
#include "dist/grid.hpp"
#include "dist/parallel_fw.hpp"
#include "graph/graph.hpp"
#include "mpisim/runtime.hpp"
#include "perf/schedule.hpp"
#include "semiring/semiring.hpp"
#include "telemetry/metrics.hpp"
#include "tune/manifest.hpp"
#include "tune/tune.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace parfw;

namespace {

void print_usage() {
  std::puts(
      "sched_tune - causal-feedback schedule autotuner (DES search)\n"
      "  --n N               matrix dimension (vertices)\n"
      "  --ranks P           total ranks (the tuner picks the grid shape)\n"
      "  --rpn R             ranks per node (default 1)\n"
      "  --word-bytes W      matrix element size (default 4)\n"
      "  --stall-weight S    objective = makespan + S * critical-path stall\n"
      "                      seconds (default 1.0; 0 = pure makespan)\n"
      "  --refine K          greedy refinement rounds (default 2)\n"
      "  --blocks B1,B2,...  restrict block sizes (default: derived)\n"
      "  --manifest FILE     look the workload up first; persist the winner\n"
      "  --force             ignore a manifest hit, re-tune\n"
      "  --bench-json FILE   tune/* rows in google-benchmark JSON layout\n"
      "  --validate          run the winner on the REAL mpisim runtime and\n"
      "                      require its wire bytes to equal the DES\n"
      "                      prediction exactly\n");
}

bool parse_blocks(const std::string& spec, std::vector<std::size_t>* out) {
  std::istringstream ss(spec);
  std::string part;
  while (std::getline(ss, part, ',')) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(part.c_str(), &end, 10);
    if (end == part.c_str() || *end != '\0' || v == 0) return false;
    out->push_back(static_cast<std::size_t>(v));
  }
  return !out->empty();
}

/// The DesVsReal cross-check: execute the winning schedule with real data
/// on the mpisim runtime and compare the live mpi.send_bytes counter
/// (minus the comm-setup cost, measured separately) against
/// perf::program_traffic for the same schedule. An exact-equality check —
/// the invariant the telemetry reconciliation suite established.
bool validate_winner(const tune::Workload& w, const tune::Candidate& win,
                     const tune::Eval& eval) {
  const dist::GridSpec grid = win.placement.grid();

  dist::DistFwOptions opt;
  opt.variant = win.variant;
  opt.block_size = win.block;
  opt.oog.num_streams = static_cast<std::size_t>(win.streams);

  telemetry::Registry full_reg;
  mpi::RuntimeOptions ropt;
  ropt.node_model = grid.node_model(w.ranks_per_node);
  ropt.metrics = &full_reg;

  DenseEntryGen<float> gen(5, 0.9, 1.0f, 80.0f, /*integral=*/true);
  Timer wall;
  (void)mpi::Runtime::run(
      grid.size(),
      [&](mpi::Comm& world) {
        dist::BlockCyclicMatrix<float> local(w.n, win.block, grid,
                                             grid.coord_of(world.rank()));
        local.fill(gen);
        dist::parallel_fw<MinPlus<float>>(world, local, opt);
      },
      ropt);
  const double real_seconds = wall.seconds();

  // Subtract the row/column communicator-setup traffic: it precedes the
  // schedule and program_traffic does not model it.
  telemetry::Registry split_reg;
  mpi::RuntimeOptions sropt;
  sropt.node_model = ropt.node_model;
  sropt.metrics = &split_reg;
  (void)mpi::Runtime::run(
      grid.size(),
      [&](mpi::Comm& world) { (void)dist::make_row_col_comms(world, grid); },
      sropt);

  const std::uint64_t measured =
      full_reg.counter("mpi.send_bytes").value() -
      split_reg.counter("mpi.send_bytes").value();
  const bool ok =
      measured == static_cast<std::uint64_t>(eval.wire_bytes);
  std::printf(
      "validate: real mpisim run of %s in %.3f s wall\n"
      "  wire bytes: real %llu vs DES %lld — %s\n"
      "  (DES-predicted makespan %.6f s is Summit-virtual time; the wall\n"
      "   time above is this host executing the same schedule)\n",
      win.name().c_str(), real_seconds,
      static_cast<unsigned long long>(measured),
      static_cast<long long>(eval.wire_bytes), ok ? "exact match" : "MISMATCH",
      eval.makespan);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv,
                       {"n", "ranks", "rpn", "word-bytes", "stall-weight",
                        "refine", "blocks", "manifest", "force", "bench-json",
                        "validate", "help"});
    if (args.get_bool("help") || argc == 1) {
      print_usage();
      return argc == 1 ? 2 : 0;
    }
    if (!args.has("n") || !args.has("ranks")) {
      std::fprintf(stderr, "sched_tune: --n and --ranks are required\n");
      return 2;
    }

    tune::Workload w;
    w.n = static_cast<std::size_t>(args.get_int("n", 0));
    w.ranks = static_cast<int>(args.get_int("ranks", 0));
    w.ranks_per_node = static_cast<int>(args.get_int("rpn", 1));
    w.word_bytes = static_cast<std::size_t>(args.get_int("word-bytes", 4));
    if (w.ranks <= 0 || w.ranks_per_node <= 0 ||
        w.ranks % w.ranks_per_node != 0) {
      std::fprintf(stderr, "sched_tune: --rpn must divide --ranks\n");
      return 2;
    }

    tune::TuneOptions topt;
    topt.stall_weight = args.get_double("stall-weight", 1.0);
    topt.refine_rounds = static_cast<int>(args.get_int("refine", 2));
    if (args.has("blocks") &&
        !parse_blocks(args.get("blocks", ""), &topt.blocks)) {
      std::fprintf(stderr, "sched_tune: bad --blocks (want B1,B2,...)\n");
      return 2;
    }

    // Manifest consult: an exact-key hit answers without a search.
    tune::Manifest manifest;
    const std::string manifest_path = args.get("manifest", "");
    bool have_file = false;
    if (!manifest_path.empty()) {
      if (std::ifstream probe(manifest_path); probe.good()) {
        std::string err;
        if (!tune::read_manifest_file(manifest_path, &manifest, &err)) {
          std::fprintf(stderr, "sched_tune: %s\n", err.c_str());
          return 1;
        }
        have_file = true;
      }
    }
    (void)have_file;

    tune::ManifestEntry entry;
    const tune::ManifestEntry* hit =
        manifest.find(w, topt.stall_weight);
    if (hit != nullptr && !args.get_bool("force")) {
      entry = *hit;
      std::printf("manifest hit: %s (predicted makespan %.6f s, stall "
                  "%.1f%%; default %.6f s, stall %.1f%%)\n",
                  entry.winner.name().c_str(), entry.predicted_makespan,
                  100.0 * entry.predicted_stall_share, entry.default_makespan,
                  100.0 * entry.default_stall_share);
    } else {
      tune::Tuner tuner(w, topt);
      const tune::TuneReport report = tuner.run();
      std::fputs(report.summary().c_str(), stdout);
      entry = tune::to_entry(report, topt.stall_weight);
      if (!manifest_path.empty()) {
        manifest.put(entry);
        std::string err;
        if (!tune::write_manifest_file(manifest_path, manifest, &err)) {
          std::fprintf(stderr, "sched_tune: %s\n", err.c_str());
          return 1;
        }
        std::printf("manifest: wrote winner to %s\n", manifest_path.c_str());
      }
    }

    if (args.has("bench-json")) {
      std::ofstream os(args.get("bench-json", ""));
      if (!os) {
        std::fprintf(stderr, "sched_tune: cannot open --bench-json file\n");
        return 1;
      }
      char buf[1024];
      std::snprintf(
          buf, sizeof buf,
          "{\n  \"context\": {\"source\": \"parfw sched_tune\"},\n"
          "  \"benchmarks\": [\n"
          "    {\"name\": \"tune/makespan_default\", \"run_type\": "
          "\"iteration\", \"real_time\": %.17g, \"time_unit\": \"s\", "
          "\"share\": %.17g},\n"
          "    {\"name\": \"tune/makespan_tuned\", \"run_type\": "
          "\"iteration\", \"real_time\": %.17g, \"time_unit\": \"s\", "
          "\"share\": %.17g},\n"
          "    {\"name\": \"tune/stall_default\", \"run_type\": "
          "\"iteration\", \"real_time\": %.17g, \"time_unit\": \"s\", "
          "\"share\": %.17g},\n"
          "    {\"name\": \"tune/stall_tuned\", \"run_type\": "
          "\"iteration\", \"real_time\": %.17g, \"time_unit\": \"s\", "
          "\"share\": %.17g}\n  ]\n}\n",
          entry.default_makespan, 1.0, entry.predicted_makespan,
          entry.predicted_makespan / entry.default_makespan,
          entry.default_makespan * entry.default_stall_share,
          entry.default_stall_share,
          entry.predicted_makespan * entry.predicted_stall_share,
          entry.predicted_stall_share);
      os << buf;
      std::printf("bench-json: wrote tune/* rows to %s\n",
                  args.get("bench-json", "").c_str());
    }

    if (args.get_bool("validate")) {
      // Re-derive the winner's Eval (cache-fresh tuner instance is fine:
      // the DES is deterministic) so wire_bytes is available even on the
      // manifest-hit path, then cross-check against the real runtime.
      tune::Tuner verifier(w, topt);
      const tune::Eval& eval = verifier.evaluate(entry.winner);
      if (!validate_winner(w, entry.winner, eval)) return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
