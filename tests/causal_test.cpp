// Tests for the causal trace-analysis layer (src/causal/): happens-before
// graph construction, critical-path extraction, blame attribution, what-if
// re-costing, and the Chrome-trace round trip.
//
// The headline suites are the ISSUE acceptance checks:
//   * DesCriticalPath — for every variant x placement, the critical-path
//     length extracted from a DES trace equals the DES makespan EXACTLY
//     (the path segments partition [t_min, t_max] by construction).
//   * FaultMatrix — the graph stays acyclic and every recv joins a send
//     under drop/dup/delay fault injection on a real mpisim run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "causal/analysis.hpp"
#include "causal/graph.hpp"
#include "causal/trace_io.hpp"
#include "core/checkpoint_store.hpp"
#include "dist/driver.hpp"
#include "dist/parallel_fw.hpp"
#include "perf/experiments.hpp"
#include "perf/machine.hpp"
#include "sched/trace.hpp"
#include "telemetry/metrics.hpp"

namespace parfw {
namespace {

using causal::BlameReport;
using causal::BuildStats;
using causal::Category;
using causal::Graph;
using sched::EventKind;
using sched::TraceEvent;
using sched::Variant;

TraceEvent span(int rank, const char* name, double t0, double t1) {
  TraceEvent e;
  e.rank = rank;
  e.name = name;
  e.t_begin = t0;
  e.t_end = t1;
  return e;
}

TraceEvent send_at(int rank, int peer, double t, std::int32_t tag,
                   std::uint64_t seq, std::uint64_t ctx) {
  TraceEvent e = span(rank, "msg", t, t);
  e.ek = EventKind::kSend;
  e.peer = peer;
  e.tag = tag;
  e.seq = seq;
  e.ctx = ctx;
  return e;
}

TraceEvent recv_span(int rank, int peer, double t0, double t1,
                     std::int32_t tag, std::uint64_t seq, std::uint64_t ctx,
                     std::uint32_t attempt = 0) {
  TraceEvent e = span(rank, "recv", t0, t1);
  e.ek = EventKind::kRecv;
  e.peer = peer;
  e.tag = tag;
  e.seq = seq;
  e.ctx = ctx;
  e.attempt = attempt;
  return e;
}

double category_sum(const BlameReport& r) {
  double s = 0.0;
  for (int c = 0; c < causal::kNumCategories; ++c)
    s += r.by_category[static_cast<std::size_t>(c)];
  return s;
}

// The path must PARTITION [t_min, t_max]: contiguous, ordered segments
// whose sum telescopes to the span. This is the structural property that
// turns the DES cross-check into an exact equality.
void expect_partition(const Graph& g, const BlameReport& r) {
  ASSERT_FALSE(r.path.empty());
  EXPECT_NEAR(r.path.front().t_lo, g.t_min, 1e-12);
  EXPECT_NEAR(r.path.back().t_hi, g.t_max, 1e-12);
  for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
    EXPECT_LE(r.path[i].t_lo, r.path[i].t_hi);
    EXPECT_NEAR(r.path[i].t_hi, r.path[i + 1].t_lo, 1e-12);
  }
  EXPECT_NEAR(category_sum(r), r.span, 1e-9 * std::max(1.0, r.span));
}

// ---------------------------------------------------------------------------
// Synthetic traces: exact blame arithmetic and slack on a hand-built DAG.

// rank0: comp[0,1] then an instant send; rank1: a recv that completes at
// 1.5 then comp[1.5,2.5]; rank2: a short off-path comp. Critical path is
// comp(1s) -> transit(0.5s) -> comp(1s).
std::vector<TraceEvent> crossrank_trace() {
  std::vector<TraceEvent> ev;
  ev.push_back(span(0, "OuterUpdate", 0.0, 1.0));
  ev.push_back(send_at(0, 1, 1.0, 7, 0, 5));
  ev.push_back(recv_span(1, 0, 0.0, 1.5, 7, 0, 5));
  ev.push_back(span(1, "OuterUpdate", 1.5, 2.5));
  ev.push_back(span(2, "OuterUpdate", 0.0, 0.3));
  return ev;
}

TEST(SyntheticPath, ExactBlamePartitionAcrossRanks) {
  BuildStats bs;
  const Graph g = causal::build_graph(crossrank_trace(), &bs);
  EXPECT_EQ(bs.matched_messages, 1u);
  EXPECT_EQ(bs.unmatched_sends, 0u);
  EXPECT_EQ(bs.unmatched_recvs, 0u);

  BlameReport r;
  std::string err;
  ASSERT_TRUE(causal::analyze(g, {}, &r, &err)) << err;
  EXPECT_DOUBLE_EQ(r.span, 2.5);
  expect_partition(g, r);
  EXPECT_NEAR(r.category(Category::kCompute), 2.0, 1e-12);
  EXPECT_NEAR(r.category(Category::kComm), 0.5, 1e-12);
  EXPECT_NEAR(r.category(Category::kStall), 0.0, 1e-12);
  EXPECT_NEAR(r.category(Category::kRetransmit), 0.0, 1e-12);

  // Per-rank attribution: one compute second on each side of the handoff;
  // the transit lands on the consumer's rank.
  EXPECT_NEAR(r.by_rank.at(0)[0], 1.0, 1e-12);
  EXPECT_NEAR(r.by_rank.at(1)[0], 1.0, 1e-12);
  EXPECT_NEAR(r.by_rank.at(1)[1], 0.5, 1e-12);

  // Slack: everything on the chain is critical; the rank-2 op could
  // stretch by span - 0.3.
  ASSERT_EQ(r.slack.size(), g.events.size());
  EXPECT_NEAR(r.slack[0], 0.0, 1e-12);
  EXPECT_NEAR(r.slack[2], 0.0, 1e-12);
  EXPECT_NEAR(r.slack[3], 0.0, 1e-12);
  EXPECT_NEAR(r.slack[4], 2.2, 1e-12);

  ASSERT_FALSE(r.top.empty());
  EXPECT_NEAR(r.top[0].on_path_seconds, 1.0, 1e-12);

  const std::string text = causal::format_report(g, r);
  EXPECT_NE(text.find("compute"), std::string::npos);
  std::ostringstream dot;
  causal::write_dot(g, r, dot);
  EXPECT_NE(dot.str().find("digraph"), std::string::npos);
}

TEST(SyntheticPath, RetransmittedTransitBlamesRetransmit) {
  std::vector<TraceEvent> ev;
  ev.push_back(span(0, "OuterUpdate", 0.0, 1.0));
  ev.push_back(send_at(0, 1, 1.0, 7, 0, 5));
  ev.push_back(recv_span(1, 0, 0.0, 1.5, 7, 0, 5, /*attempt=*/2));
  ev.push_back(span(1, "OuterUpdate", 1.5, 2.5));
  BlameReport r;
  std::string err;
  const Graph g = causal::build_graph(std::move(ev));
  ASSERT_TRUE(causal::analyze(g, {}, &r, &err)) << err;
  EXPECT_NEAR(r.category(Category::kRetransmit), 0.5, 1e-12);
  EXPECT_NEAR(r.category(Category::kComm), 0.0, 1e-12);
}

TEST(SyntheticPath, RetransmitAnchorsOnEarliestSendAttempt) {
  // A retransmission that raced past the ack fires AFTER the recv already
  // completed. The recv must join the first attempt, not the late one —
  // anchoring on the late send would put a backwards edge into the graph.
  std::vector<TraceEvent> ev;
  ev.push_back(send_at(0, 1, 0.2, 7, 0, 5));
  ev.push_back(recv_span(1, 0, 0.0, 0.6, 7, 0, 5, /*attempt=*/1));
  ev.push_back(send_at(0, 1, 0.9, 7, 0, 5));  // late retransmit, same seq
  BuildStats bs;
  const Graph g = causal::build_graph(std::move(ev), &bs);
  EXPECT_EQ(bs.matched_messages, 1u);
  std::vector<int> order;
  EXPECT_TRUE(causal::topo_order(g, &order));
  for (const causal::Edge& e : g.edges) {
    if (e.type == causal::EdgeType::kMessage) {
      EXPECT_EQ(g.events[static_cast<std::size_t>(g.event_of(e.from))].t_end,
                0.2);
    }
  }
}

TEST(SyntheticPath, CyclicTraceIsRejectedNotMisattributed) {
  // Crossed messages with inconsistent clocks: each rank's recv completes
  // before the peer's send fired. build_graph doesn't assume consistency;
  // analyze must detect the cycle and refuse.
  std::vector<TraceEvent> ev;
  ev.push_back(recv_span(0, 1, 0.0, 0.5, 2, 0, 5));
  ev.push_back(send_at(0, 1, 0.8, 1, 0, 5));
  ev.push_back(recv_span(1, 0, 0.0, 1.0, 1, 0, 5));
  ev.push_back(send_at(1, 0, 1.2, 2, 0, 5));
  const Graph g = causal::build_graph(std::move(ev));
  std::vector<int> order;
  EXPECT_FALSE(causal::topo_order(g, &order));
  BlameReport r;
  std::string err;
  EXPECT_FALSE(causal::analyze(g, {}, &r, &err));
  EXPECT_NE(err.find("cycl"), std::string::npos) << err;
}

TEST(SyntheticPath, CheckpointBarrierJoinsSlowestEntrant) {
  // Two ranks checkpoint iteration 3; rank 1 arrives late. The join makes
  // rank 0's exit wait on rank 1's entry, so the path through rank 0
  // crosses the barrier.
  std::vector<TraceEvent> ev;
  TraceEvent a = span(0, "Checkpoint", 0.1, 1.0);
  a.k = 3;
  TraceEvent b = span(1, "Checkpoint", 0.6, 1.0);
  b.k = 3;
  ev.push_back(a);
  ev.push_back(b);
  BuildStats bs;
  const Graph g = causal::build_graph(std::move(ev), &bs);
  EXPECT_EQ(bs.joins, 1u);
  BlameReport r;
  std::string err;
  ASSERT_TRUE(causal::analyze(g, {}, &r, &err)) << err;
  EXPECT_GT(r.category(Category::kCheckpoint), 0.0);
  expect_partition(g, r);
}

TEST(SyntheticPath, WhatIfRecostScalesOnlyTheTargetedCategories) {
  BlameReport r;
  std::string err;
  const Graph g = causal::build_graph(crossrank_trace());
  ASSERT_TRUE(causal::analyze(g, {}, &r, &err)) << err;
  // compute 2.0 + comm 0.5: halving comm -> 2.25; halving compute -> 1.5.
  EXPECT_NEAR(causal::recost(r, {2.0, 1.0}), 2.25, 1e-12);
  EXPECT_NEAR(causal::recost(r, {1.0, 2.0}), 1.5, 1e-12);
  EXPECT_NEAR(causal::recost(r, {1.0, 1.0}), r.span, 1e-12);
}

// --- serve traces through the causal layer (DESIGN.md §4.13) -----------------

TEST(ServeTraceBlame, ServeNamesMapToCategoriesAndPhases) {
  auto cat = [](const char* n) {
    TraceEvent e;
    e.name = n;
    return causal::category_of(e);
  };
  auto ph = [](const char* n) {
    TraceEvent e;
    e.name = n;
    return std::string(causal::phase_of(e));
  };
  EXPECT_EQ(cat("serveIO"), Category::kIo);
  EXPECT_EQ(cat("serveRoute"), Category::kComm);
  EXPECT_EQ(cat("serveGather"), Category::kComm);
  EXPECT_EQ(cat("serveSend"), Category::kComm);
  EXPECT_EQ(cat("serveRecv"), Category::kComm);
  EXPECT_EQ(cat("serveQuery"), Category::kCompute);
  EXPECT_EQ(cat("serveWalk"), Category::kCompute);
  EXPECT_EQ(cat("serveCache"), Category::kCompute);
  EXPECT_EQ(ph("serveRoute"), "route");
  EXPECT_EQ(ph("serveCache"), "cache");
  EXPECT_EQ(ph("serveIO"), "io");
  EXPECT_EQ(ph("serveWalk"), "walk");
  EXPECT_EQ(ph("serveGather"), "gather");
  EXPECT_EQ(ph("serveSend"), "gather");
  EXPECT_EQ(ph("serveQuery"), "query");
  EXPECT_STREQ(causal::category_name(Category::kIo), "io");
}

TEST(ServeTraceBlame, IoWhatIfScalesOnlyStoreReads) {
  // A serve-shaped path: route(comm) 1s -> io 1s -> walk(compute) 1s.
  std::vector<TraceEvent> ev;
  ev.push_back(span(0, "serveRoute", 0.0, 1.0));
  ev.push_back(span(0, "serveIO", 1.0, 2.0));
  ev.push_back(span(0, "serveWalk", 2.0, 3.0));
  const Graph g = causal::build_graph(std::move(ev));
  BlameReport r;
  std::string err;
  ASSERT_TRUE(causal::analyze(g, {}, &r, &err)) << err;
  EXPECT_NEAR(r.category(Category::kIo), 1.0, 1e-12);
  EXPECT_NEAR(r.by_phase.at("io")[static_cast<std::size_t>(Category::kIo)],
              1.0, 1e-12);
  // Halving the store: 3.0 -> 2.5; io is untouched by comm/compute
  // speedups, which together buy the other two seconds.
  causal::WhatIf wif;
  wif.io_speedup = 2.0;
  EXPECT_NEAR(causal::recost(r, wif), 2.5, 1e-12);
  EXPECT_NEAR(causal::recost(r, {2.0, 2.0}), 2.0, 1e-12);
}

TEST(SyntheticPath, PublishBlameExportsCpSeries) {
  BlameReport r;
  std::string err;
  const Graph g = causal::build_graph(crossrank_trace());
  ASSERT_TRUE(causal::analyze(g, {}, &r, &err)) << err;
  telemetry::Registry reg;
  causal::publish_blame(r, reg);
  bool saw_length = false, saw_share = false;
  for (const telemetry::MetricRow& row : reg.snapshot()) {
    if (row.name == "cp.length") {
      saw_length = true;
      EXPECT_DOUBLE_EQ(row.value, r.span);
    }
    if (row.name == "cp.share" && row.labels == "category=compute") {
      saw_share = true;
      EXPECT_NEAR(row.value, 0.8, 1e-12);
    }
  }
  EXPECT_TRUE(saw_length);
  EXPECT_TRUE(saw_share);
}

// ---------------------------------------------------------------------------
// DES acceptance: critical-path length == makespan, exactly, for every
// variant x placement.

constexpr Variant kAllVariants[] = {Variant::kBaseline, Variant::kPipelined,
                                    Variant::kAsync, Variant::kOffload};

class DesCriticalPath
    : public ::testing::TestWithParam<std::tuple<Variant, bool>> {};

TEST_P(DesCriticalPath, LengthEqualsMakespanExactly) {
  const auto [variant, reordered] = GetParam();
  const perf::MachineConfig m = perf::MachineConfig::summit();
  const perf::GridSetup setup = perf::make_grid(m, /*nodes=*/2, reordered);
  sched::CollectTraceSink sink;
  const perf::RunPoint p = perf::simulate_fw_placement(
      m, variant, setup, 2, 8 * 768.0, 768.0, /*comm_only=*/false, &sink);

  BuildStats bs;
  const Graph g = causal::build_graph(sink.events(), &bs);
  EXPECT_EQ(bs.unmatched_recvs, 0u);
  EXPECT_GT(bs.matched_messages, 0u);

  BlameReport r;
  std::string err;
  ASSERT_TRUE(causal::analyze(g, {}, &r, &err)) << err;
  // Exact: the partition telescopes to t_max - t_min, DES clocks start at
  // 0, and the last event to end IS the makespan.
  EXPECT_DOUBLE_EQ(r.span, p.seconds);
  expect_partition(g, r);
  for (double s : r.slack) EXPECT_GE(s, -1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsBothPlacements, DesCriticalPath,
    ::testing::Combine(::testing::ValuesIn(kAllVariants),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<DesCriticalPath::ParamType>& info) {
      return std::string(sched::variant_name(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_reordered" : "_rowmajor");
    });

TEST(DesWhatIf, FasterLinkPredictionConfirmedByRerun) {
  const perf::MachineConfig m = perf::MachineConfig::summit();
  const perf::GridSetup setup = perf::make_grid(m, 2, /*reordered=*/true);
  sched::CollectTraceSink sink;
  perf::simulate_fw_placement(m, Variant::kAsync, setup, 2, 8 * 768.0, 768.0,
                              false, &sink);
  BlameReport r;
  std::string err;
  const Graph g = causal::build_graph(sink.events());
  ASSERT_TRUE(causal::analyze(g, {}, &r, &err)) << err;

  const double predicted = causal::recost(r, {/*comm=*/2.0, /*compute=*/1.0});
  EXPECT_LE(predicted, r.span + 1e-12);

  perf::MachineConfig fast = m;
  fast.nic_bw *= 2.0;
  fast.intranode_bw *= 2.0;
  const perf::RunPoint rerun = perf::simulate_fw_placement(
      fast, Variant::kAsync, setup, 2, 8 * 768.0, 768.0, false, nullptr);
  // The re-cost keeps the old path's structure while the DES may reshape
  // it, so the prediction is approximate — but it must land close.
  EXPECT_NEAR(predicted, rerun.seconds, 0.15 * rerun.seconds);
}

// ---------------------------------------------------------------------------
// Real-execution traces (mpisim): fault matrix, wall-clock reconciliation,
// checkpoint joins.

struct FaultCase {
  const char* name;
  double drop, dup, delay;
};

class FaultMatrixCausal : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FaultMatrixCausal, GraphStaysAcyclicAndFullyMatched) {
  const FaultCase fc = GetParam();
  const std::size_t n = 48, b = 8;
  const auto grid = dist::GridSpec::row_major(2, 2);
  dist::DistFwOptions opt;
  opt.variant = Variant::kAsync;
  opt.block_size = b;
  opt.faults.seed = 0xC0FFEEu;
  opt.faults.drop_prob = fc.drop;
  opt.faults.dup_prob = fc.dup;
  opt.faults.delay_prob = fc.delay;
  opt.faults.delay_seconds = 0.0005;
  opt.resilience.send_timeout = 0.002;
  sched::CollectTraceSink sink;
  opt.trace = &sink;
  DenseEntryGen<float> gen(11, 0.9, 1.0f, 80.0f, /*integral=*/true);
  dist::run_parallel_fw<MinPlus<float>>(n, gen, grid, 2, opt);

  BuildStats bs;
  const Graph g = causal::build_graph(sink.events(), &bs);
  std::vector<int> order;
  EXPECT_TRUE(causal::topo_order(g, &order));
  // Every consumed message must join a send — retransmits and duplicates
  // may leave extra send events, never orphan recvs.
  EXPECT_EQ(bs.unmatched_recvs, 0u);
  EXPECT_GT(bs.matched_messages, 0u);

  BlameReport r;
  std::string err;
  ASSERT_TRUE(causal::analyze(g, {}, &r, &err)) << err;
  expect_partition(g, r);
}

INSTANTIATE_TEST_SUITE_P(
    DropDupDelay, FaultMatrixCausal,
    ::testing::Values(FaultCase{"clean", 0.0, 0.0, 0.0},
                      FaultCase{"drop", 0.05, 0.0, 0.0},
                      FaultCase{"dup", 0.0, 0.08, 0.0},
                      FaultCase{"delay", 0.0, 0.0, 0.08},
                      FaultCase{"all", 0.03, 0.03, 0.03}),
    [](const ::testing::TestParamInfo<FaultCase>& info) {
      return info.param.name;
    });

TEST(RealTrace, BlameTotalReconcilesWithWallTime) {
  const std::size_t n = 64, b = 8;
  const auto grid = dist::GridSpec::row_major(2, 2);
  dist::DistFwOptions opt;
  opt.variant = Variant::kAsync;
  opt.block_size = b;
  sched::CollectTraceSink sink;
  opt.trace = &sink;
  DenseEntryGen<float> gen(29, 0.9, 1.0f, 80.0f, /*integral=*/true);
  const auto res = dist::run_parallel_fw<MinPlus<float>>(n, gen, grid, 2, opt);

  BlameReport r;
  std::string err;
  const Graph g = causal::build_graph(sink.events());
  ASSERT_TRUE(causal::analyze(g, {}, &r, &err)) << err;
  // Categories partition the span exactly; the span itself must sit
  // inside the measured wall time of the parallel section (the section
  // also covers untraced setup: local fill, communicator split, gather).
  EXPECT_NEAR(category_sum(r), r.span, 1e-9 * std::max(1.0, r.span));
  EXPECT_GT(r.span, 0.0);
  EXPECT_LE(r.span, res.seconds * 1.05);
}

TEST(RealTrace, CheckpointCutsBecomeBarrierJoins) {
  const std::size_t n = 48, b = 8;
  const auto grid = dist::GridSpec::row_major(2, 2);
  MemoryCheckpointStore store;
  dist::DistFwOptions opt;
  opt.variant = Variant::kBaseline;
  opt.block_size = b;
  opt.resilience.checkpoint_every = 2;
  opt.resilience.store = &store;
  sched::CollectTraceSink sink;
  opt.trace = &sink;
  DenseEntryGen<float> gen(17, 0.9, 1.0f, 80.0f, /*integral=*/true);
  dist::run_parallel_fw<MinPlus<float>>(n, gen, grid, 2, opt);

  BuildStats bs;
  const Graph g = causal::build_graph(sink.events(), &bs);
  EXPECT_GE(bs.joins, 1u);
  std::vector<int> order;
  EXPECT_TRUE(causal::topo_order(g, &order));
  BlameReport r;
  std::string err;
  ASSERT_TRUE(causal::analyze(g, {}, &r, &err)) << err;
  expect_partition(g, r);
  EXPECT_TRUE(r.by_phase.count("checkpoint") ||
              r.category(Category::kCheckpoint) >= 0.0);
}

// ---------------------------------------------------------------------------
// Chrome-trace round trip and loader diagnostics (ISSUE satellites 1-2).

TEST(TraceIo, ChromeRoundTripPreservesCausalAnnotations) {
  sched::ChromeTraceSink sink;
  TraceEvent a = span(0, "OuterUpdate", 1.0, 2.0);
  a.k = 4;
  a.bytes = 123;
  a.flops = 7.5;
  sink.record(a);
  sink.record(send_at(0, 1, 2.0, 1007, 3, 5));
  sink.record(recv_span(1, 0, 1.2, 2.4, 1007, 3, 5, /*attempt=*/1));
  std::ostringstream os;
  sink.write(os);
  const std::string json = os.str();

  // Flow events for the matched pair (satellite: Chrome arrows).
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("msgflow"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));

  const causal::LoadResult lr = causal::load_chrome_trace(json);
  ASSERT_TRUE(lr.ok) << lr.error;
  ASSERT_EQ(lr.events.size(), 3u);  // flow rows must not round-trip as ops
  const TraceEvent& ra = lr.events[0];
  EXPECT_EQ(std::string(ra.name), "OuterUpdate");
  EXPECT_EQ(ra.k, 4u);
  EXPECT_EQ(ra.bytes, 123);
  EXPECT_NEAR(ra.t_end - ra.t_begin, 1.0, 1e-9);
  const TraceEvent& rr = lr.events[2];
  EXPECT_EQ(rr.ek, EventKind::kRecv);
  EXPECT_EQ(rr.peer, 0);
  EXPECT_EQ(rr.tag, 1007);
  EXPECT_EQ(rr.seq, 3u);
  EXPECT_EQ(rr.ctx, 5u);
  EXPECT_EQ(rr.attempt, 1u);

  // The reloaded trace must produce the same causal join.
  BuildStats bs;
  causal::build_graph(lr.events, &bs);
  EXPECT_EQ(bs.matched_messages, 1u);
}

TEST(TraceIo, TruncatedDocumentFailsWithByteOffset) {
  sched::ChromeTraceSink sink;
  sink.record(span(0, "OuterUpdate", 0.0, 1.0));
  std::ostringstream os;
  sink.write(os);
  const std::string json = os.str();
  const causal::LoadResult lr =
      causal::load_chrome_trace(json.substr(0, json.size() / 2));
  EXPECT_FALSE(lr.ok);
  EXPECT_TRUE(lr.events.empty());
  EXPECT_NE(lr.error.find("byte"), std::string::npos) << lr.error;
}

TEST(TraceIo, MalformedEventsNameTheOffendingIndex) {
  const causal::LoadResult lr = causal::load_chrome_trace(
      "{\"traceEvents\":[{\"ph\":\"X\",\"ts\":0}]}");
  EXPECT_FALSE(lr.ok);
  EXPECT_NE(lr.error.find("traceEvents[0]"), std::string::npos) << lr.error;
}

TEST(TraceIo, NonObjectDocumentAndMissingFileAreErrors) {
  EXPECT_FALSE(causal::load_chrome_trace("[1,2,3]").ok);
  EXPECT_FALSE(causal::load_chrome_trace("").ok);
  EXPECT_FALSE(
      causal::load_chrome_trace_file("/nonexistent/trace.json").ok);
}

TEST(TraceIo, ParseJsonReportsOffsets) {
  causal::JsonValue v;
  std::string err;
  ASSERT_TRUE(causal::parse_json(
      "{\"a\": [1, 2.5, true, null, \"s\"]}", &v, &err));
  const causal::JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->arr.size(), 5u);
  EXPECT_DOUBLE_EQ(a->arr[1].number, 2.5);
  EXPECT_FALSE(causal::parse_json("{\"a\": [1, 2", &v, &err));
  EXPECT_NE(err.find("byte"), std::string::npos) << err;
}

}  // namespace
}  // namespace parfw
