file(REMOVE_RECURSE
  "CMakeFiles/parfw_util.dir/cli.cpp.o"
  "CMakeFiles/parfw_util.dir/cli.cpp.o.d"
  "CMakeFiles/parfw_util.dir/table.cpp.o"
  "CMakeFiles/parfw_util.dir/table.cpp.o.d"
  "CMakeFiles/parfw_util.dir/thread_pool.cpp.o"
  "CMakeFiles/parfw_util.dir/thread_pool.cpp.o.d"
  "libparfw_util.a"
  "libparfw_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
