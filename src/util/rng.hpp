// Deterministic random number generation for workloads and tests.
//
// A single 64-bit seed fully determines every generated graph, so each
// experiment in EXPERIMENTS.md is replayable bit-for-bit. We use our own
// splitmix64/xoshiro-style engine rather than std::mt19937 so that streams
// can be split per (row, block) without correlation, which the distributed
// generator relies on to build identical matrices on every rank.
#pragma once

#include <cstdint>

namespace parfw {

/// splitmix64: used both directly and to seed stream splits.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Small, fast, seedable engine with a jump-free "split" operation.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull) : state_(seed) {
    // Warm up so that nearby seeds diverge immediately.
    (void)next();
    (void)next();
  }

  /// Uniform 64-bit value.
  std::uint64_t next() { return splitmix64(state_); }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float next_float(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) { return n ? next() % n : 0; }

  /// Derive an independent stream for a sub-object (e.g. one matrix row).
  /// Hashing (seed, tag) keeps distributed generation rank-independent:
  /// every rank derives the same per-row stream regardless of which rows
  /// it owns.
  static Rng split(std::uint64_t seed, std::uint64_t tag) {
    std::uint64_t s = seed ^ (0x9e3779b97f4a7c15ull + tag * 0xc2b2ae3d27d4eb4full);
    return Rng(s);
  }

 private:
  std::uint64_t state_;
};

}  // namespace parfw
