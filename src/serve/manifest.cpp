#include "serve/manifest.hpp"

#include <cstring>

#include "core/checkpoint.hpp"
#include "dist/checkpoint.hpp"
#include "util/check.hpp"

namespace parfw::serve {

namespace {

// Blocks {mine, mine+p, mine+2p, ...} below nb — the block-cyclic owned
// count, mirroring BlockCyclicMatrix::count_owned.
std::uint64_t count_owned(std::uint64_t nb, std::uint64_t mine,
                          std::uint64_t p) {
  return mine >= nb ? 0 : (nb - mine - 1) / p + 1;
}

}  // namespace

ServeManifest ServeManifest::open(const CheckpointStore& store) {
  auto commit = dist::read_commit(store);
  PARFW_CHECK_MSG(commit.has_value(),
                  "store holds no committed tile manifest — did the "
                  "producing run publish? (dist runs need "
                  "DistFwOptions::publish_store / DistStrategy::"
                  "publish_store; in-memory results use "
                  "serve::publish_result)");
  ServeManifest m;
  m.n_ = commit->n;
  m.block_size_ = commit->block_size;
  PARFW_CHECK_MSG(m.block_size_ > 0 && m.n_ % m.block_size_ == 0,
                  "commit record has bad geometry: n=" << m.n_ << " b="
                                                       << m.block_size_);
  m.nb_ = m.n_ / m.block_size_;
  PARFW_CHECK_MSG(
      commit->k0 == m.nb_,
      "committed cut is a mid-run checkpoint (k0=" << commit->k0 << " of "
          << m.nb_ << " pivot rounds), not a completed solve — serving "
          "half-closed distances would be wrong; publish the finished run");
  m.world_size_ = commit->world_size;
  m.variant_ = commit->variant;
  PARFW_CHECK_MSG(m.world_size_ > 0, "commit record names no ranks");
  m.ranks_.resize(m.world_size_);

  std::uint8_t header_bytes[sizeof(CheckpointHeader) + sizeof(CheckpointExtV2)];
  const ByteRange header_range{0, sizeof(header_bytes)};
  for (std::uint32_t w = 0; w < m.world_size_; ++w) {
    RankBlob& rb = m.ranks_[w];
    rb.key = dist::rank_checkpoint_key(commit->k0, static_cast<int>(w));
    const bool present = store.get_ranges(
        rb.key, std::span<const ByteRange>(&header_range, 1), header_bytes);
    PARFW_CHECK_MSG(present, "manifest names rank " << w
                                                    << " but blob '" << rb.key
                                                    << "' is missing");
    CheckpointHeader h;
    CheckpointExtV2 ext;
    std::memcpy(&h, header_bytes, sizeof(h));
    std::memcpy(&ext, header_bytes + sizeof(h), sizeof(ext));
    PARFW_CHECK_MSG(h.magic == CheckpointHeader::kMagic && h.version >= 2,
                    "'" << rb.key << "' is not a checkpoint-v2 blob");
    PARFW_CHECK_MSG(h.n == m.n_ && h.block_size == m.block_size_ &&
                        h.next_block == commit->k0,
                    "rank " << w << " blob disagrees with the commit record "
                            << "(n=" << h.n << " b=" << h.block_size
                            << " k0=" << h.next_block << ")");
    if (w == 0) {
      m.elem_size_ = h.elem_size;
      m.pred_elem_size_ = ext.pred_elem_size;
      m.grid_rows_ = ext.grid_rows;
      m.grid_cols_ = ext.grid_cols;
      PARFW_CHECK_MSG(
          static_cast<std::uint64_t>(m.grid_rows_) * m.grid_cols_ ==
              m.world_size_,
          "grid " << m.grid_rows_ << "x" << m.grid_cols_
                  << " does not cover world size " << m.world_size_);
      m.rank_of_coord_.assign(
          static_cast<std::size_t>(m.grid_rows_) * m.grid_cols_, -1);
    } else {
      PARFW_CHECK_MSG(h.elem_size == m.elem_size_ &&
                          ext.pred_elem_size == m.pred_elem_size_ &&
                          ext.grid_rows == m.grid_rows_ &&
                          ext.grid_cols == m.grid_cols_,
                      "rank " << w << " blob geometry diverges from rank 0");
    }
    PARFW_CHECK_MSG(ext.coord_row >= 0 &&
                        ext.coord_row < static_cast<std::int32_t>(m.grid_rows_) &&
                        ext.coord_col >= 0 &&
                        ext.coord_col < static_cast<std::int32_t>(m.grid_cols_),
                    "rank " << w << " states an off-grid coordinate");
    rb.coord_row = ext.coord_row;
    rb.coord_col = ext.coord_col;
    const std::size_t slot =
        static_cast<std::size_t>(ext.coord_row) * m.grid_cols_ +
        static_cast<std::size_t>(ext.coord_col);
    PARFW_CHECK_MSG(m.rank_of_coord_[slot] < 0,
                    "two ranks claim grid coordinate (" << ext.coord_row << ","
                                                        << ext.coord_col
                                                        << ")");
    m.rank_of_coord_[slot] = static_cast<int>(w);
    rb.local_block_rows = count_owned(
        m.nb_, static_cast<std::uint64_t>(ext.coord_row), m.grid_rows_);
    rb.local_block_cols = count_owned(
        m.nb_, static_cast<std::uint64_t>(ext.coord_col), m.grid_cols_);
    PARFW_CHECK_MSG(ext.tile_count ==
                        rb.local_block_rows * rb.local_block_cols,
                    "rank " << w << " tile manifest length mismatch");
    rb.payload_offset = sizeof(CheckpointHeader) + sizeof(CheckpointExtV2) +
                        ext.tile_count * sizeof(CheckpointTileRef);
  }
  return m;
}

int ServeManifest::owner_of(std::uint64_t block_row,
                            std::uint64_t block_col) const {
  PARFW_DCHECK(block_row < nb_ && block_col < nb_);
  const std::size_t slot =
      static_cast<std::size_t>(block_row % grid_rows_) * grid_cols_ +
      static_cast<std::size_t>(block_col % grid_cols_);
  return rank_of_coord_[slot];
}

const RankBlob& ServeManifest::rank(int world_rank) const {
  PARFW_CHECK_MSG(world_rank >= 0 &&
                      static_cast<std::size_t>(world_rank) < ranks_.size(),
                  "rank " << world_rank << " outside the manifest");
  return ranks_[static_cast<std::size_t>(world_rank)];
}

std::uint64_t ServeManifest::tile_bytes(TileKind kind) const {
  const std::uint64_t es =
      kind == TileKind::kValue ? elem_size_ : pred_elem_size_;
  return block_size_ * block_size_ * es;
}

void ServeManifest::tile_ranges(std::uint64_t block_row,
                                std::uint64_t block_col, TileKind kind,
                                std::vector<ByteRange>& out) const {
  PARFW_CHECK_MSG(block_row < nb_ && block_col < nb_,
                  "tile (" << block_row << "," << block_col
                           << ") outside the " << nb_ << "^2 block grid");
  PARFW_CHECK_MSG(kind == TileKind::kValue || has_pred(),
                  "pred tile requested from a values-only manifest");
  const RankBlob& rb = ranks_[static_cast<std::size_t>(
      owner_of(block_row, block_col))];
  const std::uint64_t b = block_size_;
  const std::uint64_t il = block_row / grid_rows_;
  const std::uint64_t jl = block_col / grid_cols_;
  const std::uint64_t row_elems = rb.local_block_cols * b;
  const std::uint64_t es =
      kind == TileKind::kValue ? elem_size_ : pred_elem_size_;
  // The pred payload trails ALL value rows in the blob.
  std::uint64_t base = rb.payload_offset;
  if (kind == TileKind::kPred)
    base += rb.local_block_rows * b * row_elems * elem_size_;
  out.clear();
  out.reserve(static_cast<std::size_t>(b));
  for (std::uint64_t r = 0; r < b; ++r)
    out.push_back(ByteRange{base + ((il * b + r) * row_elems + jl * b) * es,
                            b * es});
}

}  // namespace parfw::serve
