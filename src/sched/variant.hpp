// The ParallelFw schedule variants (paper §3: Algorithms 3-4, §4:
// Me-ParallelFw), split out of ir.hpp so layers that only need to NAME a
// variant (e.g. the core front-door options in core/apsp.hpp, checkpoint
// headers) can do so without pulling in the grid/IR machinery.
//
// +Reordering is not a variant: it is the same schedule generated for a
// GridSpec::tiled placement instead of row_major.
#pragma once

#include <string>

namespace parfw::sched {

enum class Variant {
  kBaseline,   ///< Algorithm 3: bulk-synchronous, tree broadcasts
  kPipelined,  ///< Algorithm 4: (k+1) look-ahead
  kAsync,      ///< kPipelined + ring PanelBcast (§3.3)
  kOffload,    ///< Me-ParallelFw: baseline schedule, OuterUpdate via ooGSrGemm
  /// Not a schedule: a front-door request to pick the variant (and the
  /// rest of the schedule configuration) by model — parfw::solve resolves
  /// it through the tuner (src/tune/) before any schedule is built.
  /// build_schedule rejects it; only option structs may carry it.
  kAuto,
};

/// The four concrete (schedulable) variants, in enum order — what
/// candidate enumerations and per-variant sweeps iterate over.
inline constexpr Variant kConcreteVariants[] = {
    Variant::kBaseline, Variant::kPipelined, Variant::kAsync,
    Variant::kOffload};

inline const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kBaseline: return "baseline";
    case Variant::kPipelined: return "pipelined";
    case Variant::kAsync: return "async";
    case Variant::kOffload: return "offload";
    case Variant::kAuto: return "auto";
  }
  return "?";
}

/// Parse a variant by its variant_name. Returns false on an unknown name.
/// `allow_auto` admits the front-door pseudo-variant; parsers for layers
/// that need a concrete schedule (e.g. trace_analyze --des) leave it off.
inline bool variant_from_name(const std::string& name, Variant* out,
                              bool allow_auto = false) {
  for (Variant v : kConcreteVariants) {
    if (name == variant_name(v)) {
      *out = v;
      return true;
    }
  }
  if (allow_auto && name == variant_name(Variant::kAuto)) {
    *out = Variant::kAuto;
    return true;
  }
  return false;
}

/// The valid names for CLI diagnostics: "baseline|pipelined|async|offload"
/// (plus "|auto" when the caller accepts the front-door pseudo-variant).
inline std::string variant_names(bool with_auto = false) {
  std::string s;
  for (Variant v : kConcreteVariants) {
    if (!s.empty()) s += '|';
    s += variant_name(v);
  }
  if (with_auto) s += "|auto";
  return s;
}

}  // namespace parfw::sched
