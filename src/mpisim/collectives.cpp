// Broadcast algorithms (paper §3.3).
//
// bcast: binomial tree — ⌈log₂ p⌉ rounds, latency-optimal; used for the
// small, critical-path DiagBcast.
//
// ring_bcast: pipelined ring relay — each rank receives from its
// predecessor and forwards to its successor; the message is cut into
// segments so relaying overlaps with receiving. Bandwidth-optimal (every
// rank sends/receives the payload exactly once) and *asynchronous*:
// completion of one rank does not wait on the tail of the ring, which is
// what lets PanelBcast(k+1) start before PanelBcast(k) fully drains.
//
// Both collectives are NODE-AWARE: members are (deterministically)
// reordered so that all ranks of a node appear contiguously, starting
// with the root's node. The ring then crosses each NIC exactly once
// (#nodes - 1 crossings total, the minimum), and the binomial tree keeps
// most of its edges intranode. Summit's Spectrum MPI collectives are
// topology-aware in the same way; without this property the paper's rank
// reordering (§3.4) could not reduce NIC traffic.

#include <algorithm>
#include <utility>
#include <vector>

#include "mpisim/communicator.hpp"

namespace parfw::mpi {

namespace {
constexpr std::size_t kRingSegmentBytes = 64 << 10;
}

std::vector<rank_t> Comm::relay_order(rank_t root) const {
  const int p = size();
  const NodeModel& nm = world_->node_model();
  const int root_node = nm.node(global_rank(root));
  int max_node = 0;
  for (int m = 0; m < p; ++m)
    max_node = std::max(max_node, nm.node(global_rank(m)));
  const long long nnodes = max_node + 1;

  std::vector<rank_t> order;
  order.reserve(static_cast<std::size_t>(p));
  order.push_back(root);
  std::vector<std::pair<long long, rank_t>> rest;  // (key, local rank)
  rest.reserve(static_cast<std::size_t>(p) - 1);
  for (rank_t m = 0; m < p; ++m) {
    if (m == root) continue;
    const long long nd =
        (nm.node(global_rank(m)) - root_node + nnodes) % nnodes;
    rest.emplace_back(nd * p + m, m);
  }
  std::sort(rest.begin(), rest.end());
  for (const auto& [key, m] : rest) order.push_back(m);
  return order;
}

void Comm::bcast_bytes(std::span<std::uint8_t> data, rank_t root, tag_t tag) {
  const int p = size();
  PARFW_CHECK(root >= 0 && root < p);
  if (p == 1 || data.empty()) return;

  // Per-collective byte distribution, one observation per collective
  // (recorded at the root so p participating ranks don't multi-count).
  if (telemetry::Registry* reg = world_->metrics();
      reg != nullptr && my_rank_ == root)
    reg->histogram("mpi.coll_bytes", "coll=tree")
        .observe(static_cast<double>(data.size()));

  const std::vector<rank_t> order = relay_order(root);
  int vrank = 0;
  while (order[static_cast<std::size_t>(vrank)] != my_rank_) ++vrank;

  // Binomial tree over virtual ranks (root is virtual rank 0).
  int mask = 1;
  while (mask < p) {
    if ((vrank & mask) != 0) {
      recv_bytes(data, order[static_cast<std::size_t>(vrank ^ mask)], tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < p)
      send_bytes(data, order[static_cast<std::size_t>(vrank + mask)], tag);
    mask >>= 1;
  }
}

void Comm::ring_bcast_bytes(std::span<std::uint8_t> data, rank_t root,
                            tag_t tag) {
  const int p = size();
  PARFW_CHECK(root >= 0 && root < p);
  if (p == 1 || data.empty()) return;

  if (telemetry::Registry* reg = world_->metrics();
      reg != nullptr && my_rank_ == root)
    reg->histogram("mpi.coll_bytes", "coll=ring")
        .observe(static_cast<double>(data.size()));

  const std::vector<rank_t> order = relay_order(root);
  int pos = 0;
  while (order[static_cast<std::size_t>(pos)] != my_rank_) ++pos;
  const rank_t pred = pos > 0 ? order[static_cast<std::size_t>(pos - 1)] : -1;
  const rank_t succ =
      pos + 1 < p ? order[static_cast<std::size_t>(pos + 1)] : -1;

  const std::size_t total = data.size();
  const std::size_t nseg = (total + kRingSegmentBytes - 1) / kRingSegmentBytes;

  // Segmented relay: forwarding segment s overlaps receiving segment s+1,
  // which is what makes the ring bandwidth-optimal end to end.
  for (std::size_t s = 0; s < nseg; ++s) {
    const std::size_t lo = s * kRingSegmentBytes;
    const std::size_t len = std::min(kRingSegmentBytes, total - lo);
    std::span<std::uint8_t> seg = data.subspan(lo, len);
    if (pred >= 0) recv_bytes(seg, pred, tag);
    if (succ >= 0) send_bytes(seg, succ, tag);
  }
}

}  // namespace parfw::mpi
