// Convenience driver: spin up the in-process runtime, distribute a
// deterministically-generated matrix, run a ParallelFw variant, gather the
// result, and report traffic statistics. This is the entry point the
// tests, benches and the distributed example use.
#pragma once

#include <cstdint>

#include "dist/parallel_fw.hpp"
#include "graph/graph.hpp"
#include "mpisim/runtime.hpp"
#include "util/timer.hpp"

namespace parfw::dist {

template <typename T>
struct DistRunResult {
  Matrix<T> dist;             ///< gathered closed matrix (at the caller)
  mpi::TrafficStats traffic;  ///< whole-run communication statistics
  double seconds = 0.0;       ///< wall time of the parallel section
};

/// Run one distributed APSP end to end. `ranks_per_node` controls the NIC
/// accounting (paper §3.4.1); use grid.qr()*grid.qc() for placements built
/// with GridSpec::tiled.
template <typename S>
DistRunResult<typename S::value_type> run_parallel_fw(
    std::size_t n, const DenseEntryGen<typename S::value_type>& gen,
    const GridSpec& grid, int ranks_per_node, const DistFwOptions& opt = {}) {
  using T = typename S::value_type;
  DistRunResult<T> result;

  mpi::RuntimeOptions ropt;
  ropt.node_model = grid.node_model(ranks_per_node);

  Timer timer;
  result.traffic = mpi::Runtime::run(
      grid.size(),
      [&](mpi::Comm& world) {
        BlockCyclicMatrix<T> local(n, opt.block_size, grid,
                                   grid.coord_of(world.rank()));
        local.fill(gen);
        world.barrier();
        parallel_fw<S>(world, local, opt);
        world.barrier();
        Matrix<T> gathered = local.gather(world);
        if (world.rank() == 0) result.dist = std::move(gathered);
      },
      ropt);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace parfw::dist
