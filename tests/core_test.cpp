// Core FW tests: sequential FW vs closed forms and SSSP oracles, blocked
// FW vs sequential across block sizes, diag-update strategies, path
// reconstruction, negative cycles, incremental updates, other semirings.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/apsp.hpp"
#include "core/blocked_fw.hpp"
#include "core/blocked_fw_paths.hpp"
#include "core/diag_update.hpp"
#include "core/floyd_warshall.hpp"
#include "core/incremental.hpp"
#include "graph/connected_components.hpp"
#include "graph/generators.hpp"
#include "sssp/sssp.hpp"

namespace parfw {
namespace {

using S = MinPlus<double>;

Matrix<double> fw_oracle(const Graph& g) {
  auto d = g.distance_matrix<S>();
  floyd_warshall<S>(d.view());
  return d;
}

TEST(FloydWarshall, RingClosedForm) {
  // Directed unit ring: dist(i, j) = (j - i) mod n.
  const vertex_t n = 12;
  const auto d = fw_oracle(gen::ring(n));
  for (vertex_t i = 0; i < n; ++i)
    for (vertex_t j = 0; j < n; ++j)
      EXPECT_EQ(d(i, j), static_cast<double>((j - i + n) % n));
}

TEST(FloydWarshall, MatchesDijkstraOnRandomGraphs) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto g = gen::erdos_renyi(60, 0.15, seed, 1.0, 100.0, /*integral=*/true);
    const auto fw = fw_oracle(g);
    const auto dj = sssp::dijkstra_apsp(g);
    EXPECT_EQ(max_abs_diff<double>(fw.view(), dj.view()), 0.0) << "seed " << seed;
  }
}

TEST(FloydWarshall, UnreachableStaysInfinite) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  const auto d = fw_oracle(g);
  EXPECT_TRUE(value_traits<double>::is_inf(d(0, 2)));
  EXPECT_TRUE(value_traits<double>::is_inf(d(3, 0)));
  EXPECT_EQ(d(0, 1), 1.0);
}

TEST(FloydWarshall, NegativeEdgesNoCycle) {
  Graph g(4);
  g.add_edge(0, 1, 5.0);
  g.add_edge(1, 2, -3.0);
  g.add_edge(2, 3, 2.0);
  g.add_edge(0, 3, 10.0);
  const auto d = fw_oracle(g);
  EXPECT_EQ(d(0, 3), 4.0);  // 5 - 3 + 2 beats the direct 10
  EXPECT_FALSE(has_negative_cycle<S>(d.view()));
}

TEST(FloydWarshall, NegativeCycleDetected) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, -2.0);
  g.add_edge(2, 0, 0.5);
  const auto d = fw_oracle(g);
  EXPECT_TRUE(has_negative_cycle<S>(d.view()));
}

TEST(FloydWarshall, MultiComponentMatchesPerComponentSolve) {
  const auto g = gen::multi_component(3, 15, 0.4, 9);
  const auto d = fw_oracle(g);
  const auto labels = connected_components(g);
  for (vertex_t i = 0; i < g.num_vertices(); ++i)
    for (vertex_t j = 0; j < g.num_vertices(); ++j)
      if (labels[i] != labels[j]) {
        EXPECT_TRUE(value_traits<double>::is_inf(d(i, j)));
      }
}

// --- Blocked FW ----------------------------------------------------------

class BlockedFwParam
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};
// (n, block_size, diag_strategy)

TEST_P(BlockedFwParam, MatchesSequential) {
  const auto [n, b, diag] = GetParam();
  const auto g = gen::erdos_renyi(n, 0.2, 1234 + n + b, 1.0, 100.0, /*integral=*/true);
  const auto expected = fw_oracle(g);
  auto d = g.distance_matrix<S>();
  BlockedFwOptions opt;
  opt.block_size = static_cast<std::size_t>(b);
  opt.diag = static_cast<DiagStrategy>(diag);
  blocked_floyd_warshall<S>(d.view(), opt);
  EXPECT_EQ(max_abs_diff<double>(expected.view(), d.view()), 0.0)
      << "n=" << n << " b=" << b << " diag=" << diag;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockedFwParam,
    ::testing::Combine(::testing::Values(1, 7, 32, 64, 97, 130),
                       ::testing::Values(1, 8, 16, 33, 64, 200),
                       ::testing::Values(0, 1)));  // kClassic, kLogSquaring

TEST(BlockedFw, PrepackedPanelsMatchPerQuadrantPacking) {
  // Persistent panel packing (the default) must be bit-identical to the
  // repack-per-quadrant path across block sizes, including fringe blocks.
  const auto g = gen::erdos_renyi(130, 0.2, 91, 1.0, 100.0, /*integral=*/true);
  for (std::size_t b : {16u, 33u, 64u}) {
    auto pre = g.distance_matrix<S>();
    auto re = pre.clone();
    BlockedFwOptions opt;
    opt.block_size = b;
    opt.prepack_panels = true;
    blocked_floyd_warshall<S>(pre.view(), opt);
    opt.prepack_panels = false;
    blocked_floyd_warshall<S>(re.view(), opt);
    EXPECT_EQ(max_abs_diff<double>(pre.view(), re.view()), 0.0) << "b=" << b;
  }
}

TEST(BlockedFw, ParallelPoolMatchesSequential) {
  ThreadPool pool(4);
  const auto g = gen::erdos_renyi(150, 0.15, 55, 1.0, 100.0, /*integral=*/true);
  const auto expected = fw_oracle(g);
  auto d = g.distance_matrix<S>();
  BlockedFwOptions opt;
  opt.block_size = 32;
  opt.pool = &pool;
  blocked_floyd_warshall<S>(d.view(), opt);
  EXPECT_EQ(max_abs_diff<double>(expected.view(), d.view()), 0.0);
}

TEST(BlockedFw, FloatPrecisionMatchesSequentialBitwise) {
  using Sf = MinPlus<float>;
  const auto g = gen::erdos_renyi(80, 0.25, 77, 1.0, 100.0, /*integral=*/true);
  auto a = g.distance_matrix<Sf>();
  auto b = a.clone();
  floyd_warshall<Sf>(a.view());
  blocked_floyd_warshall<Sf>(b.view(), {{.block_size = 17}});
  // min/+ over identical inputs is exact: results must agree bitwise.
  EXPECT_EQ(max_abs_diff<float>(a.view(), b.view()), 0.0);
}

// --- DiagUpdate ------------------------------------------------------------

TEST(DiagUpdate, LogSquaringStepCount) {
  EXPECT_EQ(log_squaring_steps(1), 0u);
  EXPECT_EQ(log_squaring_steps(2), 1u);
  EXPECT_EQ(log_squaring_steps(3), 1u);
  EXPECT_EQ(log_squaring_steps(5), 2u);
  EXPECT_EQ(log_squaring_steps(9), 3u);
  EXPECT_EQ(log_squaring_steps(64), 6u);
  EXPECT_EQ(log_squaring_steps(65), 6u);
  EXPECT_EQ(log_squaring_steps(66), 7u);
}

TEST(DiagUpdate, LogSquaringEqualsClassic) {
  for (int n : {1, 2, 3, 16, 45, 64}) {
    const auto g = gen::erdos_renyi(n, 0.3, 300 + n, 1.0, 100.0, /*integral=*/true);
    auto a = g.distance_matrix<S>();
    auto b = a.clone();
    diag_update<S>(a.view(), DiagStrategy::kClassic);
    diag_update<S>(b.view(), DiagStrategy::kLogSquaring);
    EXPECT_EQ(max_abs_diff<double>(a.view(), b.view()), 0.0) << "n=" << n;
  }
}

TEST(DiagUpdate, FlopModel) {
  EXPECT_DOUBLE_EQ(diag_update_flops(64, DiagStrategy::kClassic),
                   2.0 * 64 * 64 * 64);
  EXPECT_DOUBLE_EQ(diag_update_flops(64, DiagStrategy::kLogSquaring),
                   2.0 * 64 * 64 * 64 * 6);
}

// --- Paths -----------------------------------------------------------------

TEST(Paths, ReconstructedPathsAreValidAndOptimal) {
  const auto g = gen::erdos_renyi(40, 0.2, 91);
  ApspOptions opt;
  opt.algorithm = ApspAlgorithm::kSequential;
  opt.track_paths = true;
  const auto r = apsp<S>(g, opt);
  const auto w = g.distance_matrix<S>();  // edge weights
  for (vertex_t s = 0; s < 40; ++s) {
    for (vertex_t t = 0; t < 40; ++t) {
      if (value_traits<double>::is_inf(r.dist(s, t))) {
        if (s != t) {
          EXPECT_EQ(r.query(s, t).status, PathStatus::kUnreachable);
        }
        continue;
      }
      const auto p = r.query(s, t).path;
      ASSERT_FALSE(p.empty());
      EXPECT_EQ(p.front(), s);
      EXPECT_EQ(p.back(), t);
      double len = 0;
      for (std::size_t i = 0; i + 1 < p.size(); ++i) {
        ASSERT_FALSE(value_traits<double>::is_inf(w(p[i], p[i + 1])))
            << "path uses a non-edge";
        len += w(p[i], p[i + 1]);
      }
      EXPECT_NEAR(len, r.dist(s, t), 1e-9) << s << "->" << t;
    }
  }
}

TEST(Paths, BlockedPathsMatchSequentialDistances) {
  const auto g = gen::erdos_renyi(50, 0.25, 92, 1.0, 100.0, /*integral=*/true);
  ApspOptions seq;
  seq.algorithm = ApspAlgorithm::kSequential;
  seq.track_paths = true;
  ApspOptions blk;
  blk.algorithm = ApspAlgorithm::kBlocked;
  blk.track_paths = true;
  blk.block_size = 13;
  const auto a = apsp<S>(g, seq);
  const auto b = apsp<S>(g, blk);
  EXPECT_EQ(max_abs_diff<double>(a.dist.view(), b.dist.view()), 0.0);
  // Both predecessor matrices must induce optimal valid paths.
  const auto w = g.distance_matrix<S>();
  for (vertex_t s = 0; s < 50; ++s)
    for (vertex_t t = 0; t < 50; ++t) {
      if (value_traits<double>::is_inf(b.dist(s, t)) || s == t) continue;
      const auto p = b.query(s, t).path;
      ASSERT_FALSE(p.empty());
      double len = 0;
      for (std::size_t i = 0; i + 1 < p.size(); ++i) len += w(p[i], p[i + 1]);
      EXPECT_NEAR(len, b.dist(s, t), 1e-9);
    }
}

TEST(Paths, SelfPathIsSingleton) {
  const auto g = gen::ring(5);
  ApspOptions opt;
  opt.algorithm = ApspAlgorithm::kSequential;
  opt.track_paths = true;
  const auto r = apsp<S>(g, opt);
  EXPECT_EQ(r.query(2, 2).path, (std::vector<std::int64_t>{2}));
}

// --- High-level API ----------------------------------------------------------

TEST(Apsp, AlgorithmsAgree) {
  const auto g = gen::erdos_renyi(96, 0.2, 10, 1.0, 100.0, /*integral=*/true);
  ApspOptions sopt;
  sopt.algorithm = ApspAlgorithm::kSequential;
  const auto a = apsp<S>(g, sopt);
  ApspOptions blk;
  blk.algorithm = ApspAlgorithm::kBlocked;
  blk.block_size = 24;
  const auto b = apsp<S>(g, blk);
  ApspOptions popt;
  popt.algorithm = ApspAlgorithm::kBlockedParallel;
  const auto c = apsp<S>(g, popt);
  EXPECT_EQ(max_abs_diff<double>(a.dist.view(), b.dist.view()), 0.0);
  EXPECT_EQ(max_abs_diff<double>(a.dist.view(), c.dist.view()), 0.0);
}

TEST(Apsp, RejectNegativeCycleOption) {
  Graph g(2);
  g.add_edge(0, 1, -3.0);
  g.add_edge(1, 0, 1.0);
  ApspOptions opt;
  opt.algorithm = ApspAlgorithm::kSequential;
  opt.reject_negative_cycles = true;
  EXPECT_THROW(apsp<S>(g, opt), check_error);
}

TEST(Apsp, MaxMinWidestPath) {
  // Widest path on a ring with one weak link: the bottleneck between any
  // ordered pair is the minimum edge capacity along the only path.
  using W = MaxMin<double>;
  Graph g(4);
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 3.0);
  g.add_edge(2, 3, 8.0);
  g.add_edge(3, 0, 6.0);
  auto d = g.distance_matrix<W>();
  floyd_warshall<W>(d.view());
  EXPECT_EQ(d(0, 2), 3.0);
  EXPECT_EQ(d(0, 3), 3.0);
  EXPECT_EQ(d(2, 1), 6.0);
  auto blocked = g.distance_matrix<W>();
  blocked_floyd_warshall<W>(blocked.view(), {{.block_size = 2}});
  EXPECT_EQ(max_abs_diff<double>(d.view(), blocked.view()), 0.0);
}

TEST(Apsp, TransitiveClosure) {
  using B = BoolOrAnd;
  Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(3, 4, 1.0);
  Matrix<std::uint8_t> m(5, 5, B::zero());
  for (vertex_t v = 0; v < 5; ++v) m(v, v) = B::one();
  for (const Edge& e : g.edges()) m(e.src, e.dst) = B::one();
  blocked_floyd_warshall<B>(m.view(), {{.block_size = 2}});
  EXPECT_EQ(m(0, 2), 1);
  EXPECT_EQ(m(0, 4), 0);
  EXPECT_EQ(m(3, 4), 1);
  EXPECT_EQ(m(2, 0), 0);
}

// --- Incremental -------------------------------------------------------------

TEST(Incremental, EdgeDecreaseMatchesRecompute) {
  auto g = gen::erdos_renyi(50, 0.15, 200);
  auto closed = fw_oracle(g);
  // Improve an existing pair sharply and fold it in.
  const EdgeUpdate u{3, 17, 0.01};
  const auto outcome = incremental_update<S>(closed.view(), u);
  EXPECT_EQ(outcome, IncrementalOutcome::kApplied);
  g.add_edge(3, 17, 0.01);
  const auto expected = fw_oracle(g);
  EXPECT_LT(max_abs_diff<double>(expected.view(), closed.view()), 1e-12);
}

TEST(Incremental, NoEffectWhenNotImproving) {
  const auto g = gen::dense_uniform(20, 5, 1.0, 10.0);
  auto closed = fw_oracle(g);
  const auto before = closed.clone();
  // Weight far above the current distance: flagged as a (potential) increase.
  EXPECT_EQ(incremental_update<S>(closed.view(), {0, 1, 1e6}),
            IncrementalOutcome::kNeedsRecompute);
  // Weight exactly equal to the closure value: a genuine no-op.
  EXPECT_EQ(incremental_update<S>(closed.view(), {0, 1, closed(0, 1)}),
            IncrementalOutcome::kNoEffect);
  EXPECT_EQ(max_abs_diff<double>(before.view(), closed.view()), 0.0);
}

TEST(Incremental, BatchAppliesDecreases) {
  auto g = gen::erdos_renyi(40, 0.2, 300);
  auto closed = fw_oracle(g);
  const EdgeUpdate batch[] = {{1, 2, 0.5}, {5, 9, 0.25}, {30, 4, 0.125}};
  bool recompute = false;
  const std::size_t applied =
      incremental_update_batch<S>(closed.view(), batch, &recompute);
  EXPECT_EQ(applied, 3u);
  EXPECT_FALSE(recompute);
  for (const auto& u : batch) {
    g.add_edge(u.src, u.dst, u.new_weight);
  }
  const auto expected = fw_oracle(g);
  EXPECT_LT(max_abs_diff<double>(expected.view(), closed.view()), 1e-12);
}

}  // namespace
}  // namespace parfw
