#include "dist/grid.hpp"

namespace parfw::dist {

void GridSpec::build_inverse() {
  world_to_coord_.assign(static_cast<std::size_t>(size()), GridCoord{});
  std::vector<bool> seen(static_cast<std::size_t>(size()), false);
  for (int r = 0; r < pr_; ++r)
    for (int c = 0; c < pc_; ++c) {
      const int w = coord_to_world_[static_cast<std::size_t>(r * pc_ + c)];
      PARFW_CHECK_MSG(w >= 0 && w < size() && !seen[static_cast<std::size_t>(w)],
                      "grid placement is not a permutation");
      seen[static_cast<std::size_t>(w)] = true;
      world_to_coord_[static_cast<std::size_t>(w)] = GridCoord{r, c};
    }
}

GridSpec GridSpec::row_major(int pr, int pc) {
  PARFW_CHECK(pr > 0 && pc > 0);
  GridSpec g;
  g.pr_ = pr;
  g.pc_ = pc;
  g.qr_ = 1;
  g.qc_ = pc;  // a full grid row per "node" is the classic 1xQ default
  g.coord_to_world_.resize(static_cast<std::size_t>(pr * pc));
  for (int r = 0; r < pr; ++r)
    for (int c = 0; c < pc; ++c)
      g.coord_to_world_[static_cast<std::size_t>(r * pc + c)] = r * pc + c;
  g.build_inverse();
  return g;
}

GridSpec GridSpec::tiled(int kr, int kc, int qr, int qc) {
  PARFW_CHECK(kr > 0 && kc > 0 && qr > 0 && qc > 0);
  GridSpec g;
  g.pr_ = kr * qr;
  g.pc_ = kc * qc;
  g.qr_ = qr;
  g.qc_ = qc;
  g.coord_to_world_.resize(static_cast<std::size_t>(g.size()));
  const int q = qr * qc;
  for (int r = 0; r < g.pr_; ++r) {
    for (int c = 0; c < g.pc_; ++c) {
      const int node = (r / qr) * kc + (c / qc);
      const int within = (r % qr) * qc + (c % qc);
      g.coord_to_world_[static_cast<std::size_t>(r * g.pc_ + c)] =
          node * q + within;
    }
  }
  g.build_inverse();
  return g;
}

}  // namespace parfw::dist
