// Single-source shortest path algorithms and Johnson's APSP — the
// related-work comparators from paper §6. They double as independent
// test oracles for the Floyd-Warshall implementations.
#pragma once

#include <limits>
#include <vector>

#include "graph/graph.hpp"
#include "util/matrix.hpp"

namespace parfw::sssp {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct SsspResult {
  std::vector<double> dist;       ///< dist[v], kInf when unreachable
  std::vector<vertex_t> parent;   ///< parent[v] on the shortest-path tree, -1 at roots/unreachable
};

/// Dijkstra with a binary heap (lazy deletion). Requires non-negative
/// weights (checked).
SsspResult dijkstra(const Graph& g, vertex_t source);

/// Dijkstra with a decrease-key pairing heap — the Fibonacci-class-heap
/// variant Johnson's complexity bound assumes (§6).
SsspResult dijkstra_decrease_key(const Graph& g, vertex_t source);

/// Bellman-Ford. Handles negative edges; sets *negative_cycle when a
/// negative cycle is reachable from the source (optional out-param).
SsspResult bellman_ford(const Graph& g, vertex_t source,
                        bool* negative_cycle = nullptr);

/// Δ-stepping (Meyer & Sanders): bucketed relaxation, light/heavy edge
/// split. delta <= 0 picks delta = max_weight / avg_degree heuristically.
SsspResult delta_stepping(const Graph& g, vertex_t source, double delta = 0.0);

/// Johnson's APSP: Bellman-Ford reweighting + n Dijkstra runs.
/// O(nm + n² log n); the sparse-graph comparator (paper §6). Throws on
/// negative cycles.
Matrix<double> johnson_apsp(const Graph& g);

/// n Dijkstra runs without reweighting (valid for non-negative weights) —
/// the simplest APSP oracle for tests.
Matrix<double> dijkstra_apsp(const Graph& g);

}  // namespace parfw::sssp
