#include "graph/graph.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace parfw {

Graph::Graph(vertex_t n, std::vector<Edge> edges) : n_(n), edges_(std::move(edges)) {
  for (const Edge& e : edges_) {
    PARFW_CHECK_MSG(e.src >= 0 && e.src < n_ && e.dst >= 0 && e.dst < n_,
                    "edge (" << e.src << "," << e.dst << ") out of range for n="
                             << n_);
  }
}

void Graph::add_edge(vertex_t src, vertex_t dst, double w) {
  PARFW_CHECK_MSG(src >= 0 && src < n_ && dst >= 0 && dst < n_,
                  "edge (" << src << "," << dst << ") out of range for n=" << n_);
  edges_.push_back(Edge{src, dst, w});
  csr_valid_ = false;
}

void Graph::add_undirected_edge(vertex_t u, vertex_t v, double w) {
  add_edge(u, v, w);
  add_edge(v, u, w);
}

const Graph::Csr& Graph::csr() const {
  if (csr_valid_) return csr_;
  const std::size_t n = static_cast<std::size_t>(n_);
  csr_.offsets.assign(n + 1, 0);
  csr_.targets.assign(edges_.size(), 0);
  csr_.weights.assign(edges_.size(), 0.0);
  for (const Edge& e : edges_) ++csr_.offsets[static_cast<std::size_t>(e.src) + 1];
  for (std::size_t v = 0; v < n; ++v) csr_.offsets[v + 1] += csr_.offsets[v];
  std::vector<std::size_t> cursor(csr_.offsets.begin(), csr_.offsets.end() - 1);
  for (const Edge& e : edges_) {
    const std::size_t slot = cursor[static_cast<std::size_t>(e.src)]++;
    csr_.targets[slot] = e.dst;
    csr_.weights[slot] = e.weight;
  }
  csr_valid_ = true;
  return csr_;
}

}  // namespace parfw
