// Distributed Floyd-Warshall on a 2-D process grid — all paper variants.
//
//   kBaseline   Algorithm 3: bulk-synchronous Diag/Panel/Outer with tree
//               broadcasts.
//   kPipelined  Algorithm 4: look-ahead — the (k+1) panels receive their
//               OuterUpdate(k) first, so DiagUpdate(k+1), PanelUpdate(k+1)
//               and PanelBcast(k+1) proceed while everyone else is still
//               busy with OuterUpdate(k).
//   kAsync      kPipelined with the bandwidth-optimal ring broadcast for
//               PanelBcast (§3.3); DiagBcast stays on the latency-optimal
//               tree. Ring relays let PanelBcast(k+1) start before
//               PanelBcast(k) has fully drained.
//   kOffload    Me-ParallelFw: the local matrix lives on the host and the
//               OuterUpdate streams through a capacity-limited device via
//               ooGSrGemm (§4.3-4.4). Baseline schedule otherwise.
//
// +Reordering (the paper's third legend) is not a code variant: it is the
// same kPipelined/kAsync code run on GridSpec::tiled placement instead of
// GridSpec::row_major — the placement changes which messages cross a NIC.
//
// All variants produce bit-identical results to the sequential blocked FW
// (validated in tests, as the paper validates against sequential FW §5.1).
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "core/diag_update.hpp"
#include "devsim/device.hpp"
#include "dist/block_cyclic.hpp"
#include "dist/grid.hpp"
#include "mpisim/communicator.hpp"
#include "offload/oog_srgemm.hpp"
#include "srgemm/srgemm.hpp"

namespace parfw::dist {

enum class Variant {
  kBaseline,
  kPipelined,
  kAsync,
  kOffload,
};

inline const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kBaseline: return "baseline";
    case Variant::kPipelined: return "pipelined";
    case Variant::kAsync: return "async";
    case Variant::kOffload: return "offload";
  }
  return "?";
}

struct DistFwOptions {
  Variant variant = Variant::kAsync;
  std::size_t block_size = 64;  ///< block-cyclic block size b
  DiagStrategy diag = DiagStrategy::kClassic;
  srgemm::Config gemm{};
  /// kOffload: per-rank simulated device capacity and chunking.
  std::size_t device_memory_bytes = std::size_t{256} << 20;
  offload::OogConfig oog{};
};

namespace detail {

/// Per-iteration tag space: 8 tags per k keeps concurrent iterations'
/// collectives (ring bcast overlap) from cross-matching.
inline mpi::tag_t tag_of(std::size_t k, int phase) {
  return static_cast<mpi::tag_t>(1000 + 8 * k + static_cast<std::size_t>(phase));
}
constexpr int kTagDiagRow = 0, kTagDiagCol = 1, kTagRowPanel = 2,
              kTagColPanel = 3;

}  // namespace detail

/// Execute distributed FW on this rank's share of the matrix. Collective
/// over `world`, which must have exactly grid.size() ranks. On return the
/// local matrix holds this rank's blocks of the closed distance matrix.
template <typename S>
void parallel_fw(mpi::Comm& world, BlockCyclicMatrix<typename S::value_type>& a,
                 const DistFwOptions& opt = {}) {
  static_assert(is_idempotent<S>(), "distributed FW requires idempotent ⊕");
  using T = typename S::value_type;
  const GridSpec& grid = a.grid();
  PARFW_CHECK(world.size() == grid.size());
  const GridCoord me = grid.coord_of(world.rank());
  PARFW_CHECK(me == a.coord());
  const std::size_t b = a.block_size();
  const std::size_t nb = a.num_blocks();
  const int pr = grid.rows(), pc = grid.cols();
  PARFW_CHECK_MSG(nb >= static_cast<std::size_t>(pr) &&
                      nb >= static_cast<std::size_t>(pc),
                  "need at least one block per process row/column");
  const std::size_t nlr = a.local_block_rows(), nlc = a.local_block_cols();
  auto local = a.local().view();

  // Row communicator: my grid row, ranked by grid column (size pc).
  // Column communicator: my grid column, ranked by grid row (size pr).
  mpi::Comm row_comm = world.split(me.row, me.col);
  mpi::Comm col_comm = world.split(me.col + grid.rows() + 7, me.row);
  PARFW_CHECK(row_comm.size() == pc && col_comm.size() == pr);
  PARFW_CHECK(row_comm.rank() == me.col && col_comm.rank() == me.row);

  Matrix<T> akk(b, b);              // closed diagonal block of iteration k
  Matrix<T> rowp(b, nlc * b);       // k-th block row, my columns
  Matrix<T> colp(nlr * b, b);       // k-th block column, my rows
  Matrix<T> next_rowp(b, nlc * b);  // staging for iteration k+1 (pipelined)
  Matrix<T> next_colp(nlr * b, b);
  Matrix<T> diag_scratch(b, b);

  // Optional per-rank device for the offload variant.
  std::unique_ptr<dev::Device> device;
  if (opt.variant == Variant::kOffload) {
    dev::DeviceConfig dc;
    dc.memory_bytes = opt.device_memory_bytes;
    device = std::make_unique<dev::Device>(dc);
  }

  // ---- helpers for the five schedule phases -----------------------------

  // DiagUpdate(k): owner closes A(k,k) in place and snapshots it into akk.
  auto diag_update_k = [&](std::size_t k) {
    const int krow = static_cast<int>(k) % pr, kcol = static_cast<int>(k) % pc;
    if (me.row == krow && me.col == kcol) {
      auto dk = a.block(a.local_row(k), a.local_col(k));
      diag_update<S>(dk, opt.diag, diag_scratch.view(), opt.gemm);
      akk.view().copy_from(dk);
    }
  };

  // DiagBcast(k): owner broadcasts akk across its process row and column.
  auto diag_bcast_k = [&](std::size_t k) {
    const int krow = static_cast<int>(k) % pr, kcol = static_cast<int>(k) % pc;
    if (me.row == krow)
      row_comm.bcast_bytes(
          {reinterpret_cast<std::uint8_t*>(akk.data()), akk.size() * sizeof(T)},
          kcol, detail::tag_of(k, detail::kTagDiagRow));
    if (me.col == kcol)
      col_comm.bcast_bytes(
          {reinterpret_cast<std::uint8_t*>(akk.data()), akk.size() * sizeof(T)},
          krow, detail::tag_of(k, detail::kTagDiagCol));
  };

  // PanelUpdate(k): ranks in the k-th process row left-multiply their
  // whole local row strip by akk (the strip includes the diagonal block,
  // for which the update is an idempotent no-op); the k-th process column
  // right-multiplies its column strip. Results land in rp / cp.
  auto panel_update_k = [&](std::size_t k, Matrix<T>& rp, Matrix<T>& cp) {
    const int krow = static_cast<int>(k) % pr, kcol = static_cast<int>(k) % pc;
    if (me.row == krow && nlc > 0) {
      auto strip = local.sub(a.local_row(k) * b, 0, b, nlc * b);
      srgemm::multiply<S>(akk.view(), strip, strip, opt.gemm);
      rp.view().copy_from(strip);
    }
    if (me.col == kcol && nlr > 0) {
      auto strip = local.sub(0, a.local_col(k) * b, nlr * b, b);
      srgemm::multiply<S>(strip, akk.view(), strip, opt.gemm);
      cp.view().copy_from(strip);
    }
  };

  // PanelBcast(k) splits into two independent collectives; pipelined
  // variants call the root side early and the receive side late.
  //  * row panel: down the process columns (col_comm), root = k mod P_r
  //  * col panel: across the process rows (row_comm), root = k mod P_c
  const bool use_ring = opt.variant == Variant::kAsync;
  auto row_panel_bcast = [&](std::size_t k, Matrix<T>& rp) {
    const int krow = static_cast<int>(k) % pr;
    std::span<std::uint8_t> bytes{reinterpret_cast<std::uint8_t*>(rp.data()),
                                  rp.size() * sizeof(T)};
    if (use_ring)
      col_comm.ring_bcast_bytes(bytes, krow, detail::tag_of(k, detail::kTagRowPanel));
    else
      col_comm.bcast_bytes(bytes, krow, detail::tag_of(k, detail::kTagRowPanel));
  };
  auto col_panel_bcast = [&](std::size_t k, Matrix<T>& cp) {
    const int kcol = static_cast<int>(k) % pc;
    std::span<std::uint8_t> bytes{reinterpret_cast<std::uint8_t*>(cp.data()),
                                  cp.size() * sizeof(T)};
    if (use_ring)
      row_comm.ring_bcast_bytes(bytes, kcol, detail::tag_of(k, detail::kTagColPanel));
    else
      row_comm.bcast_bytes(bytes, kcol, detail::tag_of(k, detail::kTagColPanel));
  };

  // OuterUpdate(k) over an arbitrary sub-range of the local matrix.
  // Applying it to panel strips as well is an idempotent no-op, so the
  // default covers the whole local matrix (see header comment). The
  // received panel buffers (colp/rowp) are dense and reused for every
  // quadrant of the local matrix, so the CPU path runs prepacked — the
  // kernels must not re-pack the same panels per call.
  auto outer_update = [&](MatrixView<T> c, MatrixView<const T> cp,
                          MatrixView<const T> rp) {
    if (c.empty()) return;
    if (opt.variant == Variant::kOffload) {
      (void)offload::oog_srgemm<S>(*device, cp, rp, c, opt.oog);
    } else {
      srgemm::multiply_prepacked<S>(cp, rp, c, opt.gemm);
    }
  };

  const bool pipelined =
      opt.variant == Variant::kPipelined || opt.variant == Variant::kAsync;

  if (!pipelined) {
    // ------------------- Algorithm 3 (bulk synchronous) ------------------
    for (std::size_t k = 0; k < nb; ++k) {
      diag_update_k(k);
      diag_bcast_k(k);
      panel_update_k(k, rowp, colp);
      row_panel_bcast(k, rowp);
      col_panel_bcast(k, colp);
      outer_update(local, colp.view(), rowp.view());
    }
    return;
  }

  // --------------------- Algorithm 4 (pipelined) -------------------------
  // Prologue: establish the k = 0 panels.
  diag_update_k(0);
  diag_bcast_k(0);
  panel_update_k(0, rowp, colp);
  row_panel_bcast(0, rowp);
  col_panel_bcast(0, colp);

  for (std::size_t k = 0; k < nb; ++k) {
    const std::size_t k1 = k + 1;
    const int k1row = static_cast<int>(k1) % pr;
    const int k1col = static_cast<int>(k1) % pc;

    if (k1 < nb) {
      // Look-ahead: apply OuterUpdate(k) to the (k+1) panels only, so
      // iteration k+1's Diag/Panel phases can start before the bulk
      // OuterUpdate(k) (§3.1-3.2: the k+1 steps need only the k+1 panels).
      if (me.row == k1row && nlc > 0) {
        auto strip = local.sub(a.local_row(k1) * b, 0, b, nlc * b);
        auto cp_blk = colp.sub(a.local_row(k1) * b, 0, b, b);
        srgemm::multiply_prepacked<S>(cp_blk, rowp.view(), strip, opt.gemm);
      }
      if (me.col == k1col && nlr > 0) {
        auto strip = local.sub(0, a.local_col(k1) * b, nlr * b, b);
        auto rp_blk = rowp.sub(0, a.local_col(k1) * b, b, b);
        srgemm::multiply_prepacked<S>(colp.view(), rp_blk, strip, opt.gemm);
      }

      // DiagUpdate(k+1) + DiagBcast(k+1) on the critical path.
      diag_update_k(k1);
      diag_bcast_k(k1);
      // PanelUpdate(k+1), then roots *initiate* PanelBcast(k+1): with
      // eager sends the root-side call returns once the payload is handed
      // to the runtime, so the broadcast overlaps the OuterUpdate below.
      // With the ring collective the root's successors relay as soon as
      // they reach their own receive point (§3.3 asynchrony).
      panel_update_k(k1, next_rowp, next_colp);
      if (me.row == k1row) row_panel_bcast(k1, next_rowp);
      if (me.col == k1col) col_panel_bcast(k1, next_colp);
    }

    // Bulk OuterUpdate(k) on the whole local matrix. Re-applying it to
    // the already look-ahead-updated (k+1) strips is an idempotent no-op
    // (every candidate is a valid path length; see header).
    outer_update(local, colp.view(), rowp.view());

    if (k1 < nb) {
      // Receive side of PanelBcast(k+1) for everyone who was not a root.
      if (me.row != k1row) row_panel_bcast(k1, next_rowp);
      if (me.col != k1col) col_panel_bcast(k1, next_colp);
      std::swap(rowp, next_rowp);
      std::swap(colp, next_colp);
    }
  }
}

}  // namespace parfw::dist
