// Knowledge-graph relationship mining (the paper's §1 motivating use).
//
// "In knowledge graph analytics, the relationship mining problems become
// computing APSP in a large and dense graph."
//
// This example builds a synthetic entity co-occurrence graph (scale-free,
// like real knowledge graphs), converts co-occurrence counts into
// semantic distances, runs APSP, and mines it three ways:
//   1. strongest indirect relationships (closest entity pairs that share
//      no direct edge),
//   2. centrality ranking by closeness (1 / mean distance to all others),
//   3. widest-path "confidence routing" over the max-min semiring, where
//      an edge's weight is the confidence of the relation and a path is
//      as trustworthy as its weakest link.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/apsp.hpp"
#include "graph/generators.hpp"

using namespace parfw;

int main() {
  // Entity graph: preferential attachment gives the hub-dominated degree
  // distribution typical of entity co-occurrence; weight = semantic
  // distance (inverse association strength).
  const vertex_t n = 400;
  const Graph g = gen::preferential_attachment(n, 3, /*seed=*/42, 0.5, 4.0);
  std::printf("knowledge graph: %lld entities, %zu relations\n",
              static_cast<long long>(g.num_vertices()), g.num_edges());

  ApspOptions opt;
  opt.algorithm = ApspAlgorithm::kBlockedParallel;
  opt.block_size = 64;
  const auto apsp_result = apsp<MinPlus<double>>(g, opt);
  const auto& dist = apsp_result.dist;

  // Direct-edge lookup for filtering.
  const auto direct = g.distance_matrix<MinPlus<double>>();

  // 1. Strongest indirect relationships.
  struct Pair {
    vertex_t a, b;
    double d;
  };
  std::vector<Pair> indirect;
  for (vertex_t i = 0; i < n; ++i)
    for (vertex_t j = i + 1; j < n; ++j) {
      if (!value_traits<double>::is_inf(direct(i, j))) continue;  // direct
      if (value_traits<double>::is_inf(dist(i, j))) continue;     // unrelated
      indirect.push_back({i, j, dist(i, j)});
    }
  std::partial_sort(indirect.begin(),
                    indirect.begin() + std::min<std::size_t>(5, indirect.size()),
                    indirect.end(),
                    [](const Pair& x, const Pair& y) { return x.d < y.d; });
  std::printf("\nstrongest indirect relationships (no direct edge):\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, indirect.size()); ++i)
    std::printf("  entity %lld <-> entity %lld  distance %.3f\n",
                static_cast<long long>(indirect[i].a),
                static_cast<long long>(indirect[i].b), indirect[i].d);

  // 2. Closeness centrality.
  std::vector<std::pair<double, vertex_t>> central;
  for (vertex_t i = 0; i < n; ++i) {
    double sum = 0;
    int reach = 0;
    for (vertex_t j = 0; j < n; ++j) {
      if (i == j || value_traits<double>::is_inf(dist(i, j))) continue;
      sum += dist(i, j);
      ++reach;
    }
    if (reach > 0) central.emplace_back(static_cast<double>(reach) / sum, i);
  }
  std::sort(central.rbegin(), central.rend());
  std::printf("\ntop-5 entities by closeness centrality:\n");
  for (std::size_t i = 0; i < 5 && i < central.size(); ++i)
    std::printf("  entity %lld  closeness %.4f\n",
                static_cast<long long>(central[i].second), central[i].first);

  // 3. Confidence routing: reuse the same machinery over max-min.
  //    Confidence of an edge = 1 / (1 + distance); path confidence = min
  //    edge confidence along it; best path = max over paths.
  Graph conf_graph(n);
  for (const Edge& e : g.edges())
    conf_graph.add_edge(e.src, e.dst, 1.0 / (1.0 + e.weight));
  auto conf = conf_graph.distance_matrix<MaxMin<double>>();
  blocked_floyd_warshall<MaxMin<double>>(conf.view(), {{.block_size = 64}});
  const vertex_t a = central.front().second;
  const vertex_t b2 = central.back().second;
  std::printf("\nconfidence between hub %lld and fringe %lld: "
              "best direct %.3f, best path %.3f\n",
              static_cast<long long>(a), static_cast<long long>(b2),
              1.0 / (1.0 + direct(a, b2)),
              conf(a, b2));
  return 0;
}
