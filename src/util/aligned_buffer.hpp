// 64-byte-aligned heap buffer used for matrix storage.
//
// The SRGEMM microkernel vectorises over contiguous rows; cache-line
// alignment keeps tile loads from splitting lines and makes performance
// measurements stable.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

#include "util/check.hpp"

namespace parfw {

/// Owning, 64-byte aligned, fixed-size array of trivially-destructible T.
/// Move-only (a matrix handle owns exactly one allocation).
template <typename T>
class AlignedBuffer {
  static constexpr std::size_t kAlign = 64;

 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t n) : size_(n) {
    if (n == 0) return;
    const std::size_t bytes = (n * sizeof(T) + kAlign - 1) / kAlign * kAlign;
    data_ = static_cast<T*>(std::aligned_alloc(kAlign, bytes));
    if (data_ == nullptr) throw std::bad_alloc();
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  ~AlignedBuffer() { release(); }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

 private:
  void release() noexcept {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace parfw
