// SSSP baseline tests: Dijkstra / Bellman-Ford / delta-stepping agreement,
// Johnson's APSP vs Floyd-Warshall, negative-cycle handling.
#include <gtest/gtest.h>

#include "core/floyd_warshall.hpp"
#include "graph/generators.hpp"
#include "sssp/sssp.hpp"

namespace parfw {
namespace {

double diff(const std::vector<double>& a, const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == sssp::kInf && b[i] == sssp::kInf) continue;
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

TEST(Dijkstra, LineGraph) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  const auto r = sssp::dijkstra(g, 0);
  EXPECT_EQ(r.dist, (std::vector<double>{0, 1, 3, 6}));
  EXPECT_EQ(r.parent[3], 2);
  EXPECT_EQ(r.parent[0], -1);
}

TEST(Dijkstra, PrefersShorterIndirectPath) {
  Graph g(3);
  g.add_edge(0, 2, 10.0);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  const auto r = sssp::dijkstra(g, 0);
  EXPECT_EQ(r.dist[2], 3.0);
  EXPECT_EQ(r.parent[2], 1);
}

TEST(Dijkstra, NegativeWeightThrows) {
  Graph g(2);
  g.add_edge(0, 1, -1.0);
  EXPECT_THROW(sssp::dijkstra(g, 0), check_error);
}

TEST(BellmanFord, MatchesDijkstraNonNegative) {
  for (std::uint64_t seed : {10u, 20u, 30u}) {
    const auto g = gen::erdos_renyi(80, 0.1, seed);
    const auto d = sssp::dijkstra(g, 0);
    const auto b = sssp::bellman_ford(g, 0);
    EXPECT_EQ(diff(d.dist, b.dist), 0.0) << "seed " << seed;
  }
}

TEST(BellmanFord, HandlesNegativeEdges) {
  Graph g(4);
  g.add_edge(0, 1, 4.0);
  g.add_edge(0, 2, 5.0);
  g.add_edge(1, 3, -2.0);
  g.add_edge(2, 3, -4.0);
  bool neg = true;
  const auto r = sssp::bellman_ford(g, 0, &neg);
  EXPECT_FALSE(neg);
  EXPECT_EQ(r.dist[3], 1.0);
}

TEST(BellmanFord, DetectsNegativeCycle) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, -5.0);
  g.add_edge(2, 1, 1.0);
  bool neg = false;
  sssp::bellman_ford(g, 0, &neg);
  EXPECT_TRUE(neg);
}

TEST(BellmanFord, UnreachableNegativeCycleIgnored) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, -5.0);
  g.add_edge(3, 2, 1.0);  // negative cycle, unreachable from 0
  bool neg = false;
  const auto r = sssp::bellman_ford(g, 0, &neg);
  EXPECT_FALSE(neg);
  EXPECT_EQ(r.dist[1], 1.0);
}

TEST(DeltaStepping, MatchesDijkstra) {
  for (std::uint64_t seed : {7u, 8u}) {
    const auto g = gen::erdos_renyi(120, 0.08, seed);
    const auto d = sssp::dijkstra(g, 3);
    for (double delta : {0.0, 1.0, 25.0, 1000.0}) {
      const auto ds = sssp::delta_stepping(g, 3, delta);
      EXPECT_EQ(diff(d.dist, ds.dist), 0.0)
          << "seed " << seed << " delta " << delta;
    }
  }
}

TEST(DeltaStepping, GridGraph) {
  const auto g = gen::grid2d(8, 9, 44);
  const auto d = sssp::dijkstra(g, 0);
  const auto ds = sssp::delta_stepping(g, 0);
  EXPECT_EQ(diff(d.dist, ds.dist), 0.0);
}

TEST(Johnson, MatchesFloydWarshallWithNegativeEdges) {
  // Sparse digraph with some negative edges but no negative cycles:
  // weights in [-2, 50] on a DAG-ish layered structure plus a few back
  // edges with positive weight.
  Graph g(30);
  Rng rng(66);
  for (vertex_t i = 0; i < 29; ++i) {
    for (int e = 0; e < 3; ++e) {
      const vertex_t j = i + 1 + static_cast<vertex_t>(rng.next_below(
                                     static_cast<std::uint64_t>(29 - i)));
      g.add_edge(i, j, rng.next_double() * 52.0 - 2.0);  // may be negative
    }
  }
  for (int e = 0; e < 10; ++e) {
    const vertex_t i = static_cast<vertex_t>(rng.next_below(30));
    const vertex_t j = static_cast<vertex_t>(rng.next_below(30));
    if (i != j) g.add_edge(i, j, 10.0 + rng.next_double() * 40.0);
  }
  auto fw = g.distance_matrix<MinPlus<double>>();
  floyd_warshall<MinPlus<double>>(fw.view());
  ASSERT_FALSE(has_negative_cycle<MinPlus<double>>(fw.view()));
  const auto jn = sssp::johnson_apsp(g);
  for (std::size_t i = 0; i < 30; ++i)
    for (std::size_t j = 0; j < 30; ++j) {
      if (value_traits<double>::is_inf(fw(i, j))) {
        EXPECT_EQ(jn(i, j), sssp::kInf);
      } else {
        EXPECT_NEAR(jn(i, j), fw(i, j), 1e-6);
      }
    }
}

TEST(Johnson, ThrowsOnNegativeCycle) {
  Graph g(2);
  g.add_edge(0, 1, -1.0);
  g.add_edge(1, 0, -1.0);
  EXPECT_THROW(sssp::johnson_apsp(g), check_error);
}

TEST(DijkstraApsp, MatchesFloydWarshall) {
  const auto g = gen::grid2d(6, 6, 51);
  const auto dj = sssp::dijkstra_apsp(g);
  auto fw = g.distance_matrix<MinPlus<double>>();
  floyd_warshall<MinPlus<double>>(fw.view());
  for (std::size_t i = 0; i < 36; ++i)
    for (std::size_t j = 0; j < 36; ++j)
      EXPECT_NEAR(dj(i, j), fw(i, j), 1e-9);
}

}  // namespace
}  // namespace parfw
