#!/usr/bin/env bash
# Tier-1 verification + SRGEMM bench smoke — the gate every PR must pass.
#
#   scripts/check.sh [build-dir]
#
# 1. Configure + build (Release, all warnings).
# 2. Run the full ctest suite.
# 3. Run a ~2 s SRGEMM micro-bench smoke so kernel-dispatch regressions
#    (e.g. SIMD silently falling back to scalar) show up as a number, not
#    just as green tests.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j"$(nproc)"

ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)"

echo "== SRGEMM bench smoke (scalar tiled vs SIMD, n=512) =="
"$build_dir/bench/bench_srgemm_micro" \
  --benchmark_filter='BM_Srgemm(TiledScalar|Simd)/512$' \
  --benchmark_min_time=0.2s

echo "check.sh: OK"
