// Figure 8 — strong scaling on n = 300,000 vertices, 16 -> 256 nodes.
//
// Paper: PFLOP/s for all five legends plus the perfect-scaling line.
// Findings: Co-ParallelFw (+async) reaches 8.1 PF/s on 256 nodes (~70% of
// peak, ~80% parallel efficiency vs ideal, 45% strong-scaling efficiency
// from 16 nodes); it is 1.6x over baseline at 16 nodes and 4.6x at 256
// nodes — the communication optimisations matter more as nodes grow.
#include <cstdio>

#include "fig_common.hpp"

using namespace parfw;
using namespace parfw::perf;

int main() {
  bench::header(
      "Figure 8: strong scaling, n = 300,000",
      "paper: +async hits 8.1 PF/s at 256 nodes; speedup over baseline\n"
      "grows from 1.6x (16 nodes) to 4.6x (256 nodes).");

  const MachineConfig m = MachineConfig::summit();
  const double n = 300000, b = 768;
  const auto legends = paper_legends();
  bench::FigTrace trace;  // PARFW_TRACE=<file> records the first run

  Table t({"nodes", "offload", "baseline", "pipelined", "+reorder", "+async",
           "ideal", "async/base"});
  double async16 = 0, async256 = 0, base16 = 0, base256 = 0;
  for (int nodes : {16, 32, 64, 128, 256}) {
    std::vector<double> pf;
    for (const auto& legend :
         {legends[4], legends[0], legends[1], legends[2], legends[3]}) {
      pf.push_back(simulate_fw(m, legend, nodes, n, b, trace.sink()).pflops);
    }
    const double ideal =
        nodes * m.gpus_per_node * m.srgemm_flops / 1e15;  // perfect scaling
    if (nodes == 16) {
      async16 = pf[4];
      base16 = pf[1];
    }
    if (nodes == 256) {
      async256 = pf[4];
      base256 = pf[1];
    }
    t.add_row({std::to_string(nodes), Table::num(pf[0], 2),
               Table::num(pf[1], 2), Table::num(pf[2], 2),
               Table::num(pf[3], 2), Table::num(pf[4], 2),
               Table::num(ideal, 2), Table::num(pf[4] / pf[1], 2)});
  }
  std::printf("%s", t.str().c_str());

  std::printf("\n+async at 256 nodes: %.2f PF/s (paper: 8.1); "
              "speedup over baseline: %.1fx at 16 nodes (paper 1.6x), "
              "%.1fx at 256 nodes (paper 4.6x)\n",
              async256, async16 / base16, async256 / base256);
  std::printf("strong-scaling efficiency 16->256 (+async): %.0f%% "
              "(paper: ~45%%)\n",
              100.0 * (async256 / async16) / 16.0);

  bench::footer(
      "expect: +async highest and closest to ideal at every node count;\n"
      "the async/base ratio grows with node count; baseline and offload\n"
      "flatten early — the paper's Figure 8 ordering.");
  return 0;
}
