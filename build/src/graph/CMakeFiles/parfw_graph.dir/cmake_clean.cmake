file(REMOVE_RECURSE
  "CMakeFiles/parfw_graph.dir/connected_components.cpp.o"
  "CMakeFiles/parfw_graph.dir/connected_components.cpp.o.d"
  "CMakeFiles/parfw_graph.dir/generators.cpp.o"
  "CMakeFiles/parfw_graph.dir/generators.cpp.o.d"
  "CMakeFiles/parfw_graph.dir/graph.cpp.o"
  "CMakeFiles/parfw_graph.dir/graph.cpp.o.d"
  "CMakeFiles/parfw_graph.dir/io.cpp.o"
  "CMakeFiles/parfw_graph.dir/io.cpp.o.d"
  "libparfw_graph.a"
  "libparfw_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parfw_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
