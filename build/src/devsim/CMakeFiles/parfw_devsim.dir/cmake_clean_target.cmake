file(REMOVE_RECURSE
  "libparfw_devsim.a"
)
